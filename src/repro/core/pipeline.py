"""End-to-end API: sender, receiver, and the one-call link runners.

:class:`InFrameSender` wires a video source and a data schedule into a
playable display timeline; :class:`InFrameReceiver` wires the decoder and
payload assembler for a camera; :func:`run_link` runs the whole loop --
multiplex, display, capture, decode, score -- and returns Figure-7 style
statistics.  :func:`run_transport_link` layers :mod:`repro.transport` on
top: the payload travels as self-describing packets (plain sequential,
rateless fountain, NACK-driven ARQ, or a broadcast carousel), and the
receiver bootstraps from packet headers alone -- no out-of-band
:class:`FramingPlan`.  This is the surface the examples, tools and
benchmarks use.
"""

from __future__ import annotations

import time
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, replace as dataclass_replace
from typing import TYPE_CHECKING

import numpy as np

from repro.camera.capture import CameraModel, CapturedFrame
from repro.core.config import InFrameConfig
from repro.core.decoder import DecodedDataFrame, InFrameDecoder
from repro.core.framing import (
    FramingPlan,
    PayloadAssembler,
    PayloadSchedule,
    PseudoRandomSchedule,
)
from repro.core.geometry import FrameGeometry
from repro.core.metrics import LinkStats, summarize_link
from repro.core.multiplexer import DataFrameSchedule, MultiplexedStream
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.obs import RunTelemetry, Telemetry
from repro.obs.live import live_collector
from repro.obs.metrics import WORK
from repro.runtime.link_exec import CaptureSource, execute_link_captures
from repro.runtime.profiler import RuntimeReport
from repro.video.source import VideoSource

if TYPE_CHECKING:  # imported lazily at run time to keep layering acyclic
    from repro.core.decoder import HealingReport
    from repro.faults.plan import FaultPlan
    from repro.faults.report import DegradationReport, InjectionLog


class InFrameSender:
    """Sender: multiplexes a data schedule onto a video for a given panel.

    Parameters
    ----------
    config:
        InFrame parameters; ``refresh_hz``/``video_fps`` must match the
        panel and video.
    video:
        The primary content (its shape must equal the panel's).
    schedule:
        Data supplier; defaults to the paper's pseudo-random generator.
    panel:
        The display; defaults to the paper's 120 Hz panel at the video's
        resolution.
    """

    def __init__(
        self,
        config: InFrameConfig,
        video: VideoSource,
        schedule: DataFrameSchedule | None = None,
        panel: DisplayPanel | None = None,
    ) -> None:
        if panel is None:
            panel = DisplayPanel(
                width=video.width, height=video.height, refresh_hz=config.refresh_hz
            )
        if (panel.height, panel.width) != (video.height, video.width):
            raise ValueError(
                f"panel {panel.height}x{panel.width} does not match video "
                f"{video.height}x{video.width}"
            )
        if abs(panel.refresh_hz - config.refresh_hz) > 1e-9:
            raise ValueError(
                f"panel refresh {panel.refresh_hz} does not match config "
                f"refresh_hz {config.refresh_hz}"
            )
        self.config = config
        self.video = video
        self.panel = panel
        self.schedule = schedule if schedule is not None else PseudoRandomSchedule(config)
        self.stream = MultiplexedStream(
            config, video, self.schedule, gamma_curve=panel.gamma_curve
        )

    @property
    def geometry(self) -> FrameGeometry:
        """The Block-grid placement on this panel."""
        return self.stream.geometry

    def timeline(self) -> DisplayTimeline:
        """The emitted-light timeline of the multiplexed playback."""
        return DisplayTimeline(self.panel, self.stream)

    def plan(self) -> FramingPlan | None:
        """The framing plan, when the schedule carries a payload."""
        if isinstance(self.schedule, PayloadSchedule):
            return self.schedule.plan
        return None


class InFrameReceiver:
    """Receiver: decodes captures and (optionally) reassembles payloads."""

    def __init__(
        self,
        config: InFrameConfig,
        geometry: FrameGeometry,
        camera: CameraModel,
        plan: FramingPlan | None = None,
        inset: float = 0.2,
    ) -> None:
        self.config = config
        self.camera = camera
        self.decoder = InFrameDecoder(
            config,
            geometry,
            camera.height,
            camera.width,
            inset=inset,
            screen_rect=camera.screen_rect() if camera.screen_fill < 1.0 else None,
            view=camera.view,
        )
        self.plan = plan

    def decode(self, captures: list[CapturedFrame]) -> list[DecodedDataFrame]:
        """Decode captured frames into data-frame verdicts."""
        return self.decoder.decode(captures)

    def assemble_payload(self, decoded: list[DecodedDataFrame]) -> bytes:
        """Reassemble the payload carried by the decoded frames.

        Requires the sender's :class:`FramingPlan` (constructor argument).
        """
        if self.plan is None:
            raise ValueError("receiver was built without a framing plan")
        assembler = PayloadAssembler(self.config, self.plan)
        for frame in decoded:
            assembler.add_frame(frame)
        return assembler.payload()


@dataclass(frozen=True)
class LinkRun:
    """Everything produced by one end-to-end link simulation."""

    stats: LinkStats
    decoded: list[DecodedDataFrame]
    truths: list[np.ndarray]
    captures: list[CapturedFrame]
    sender: InFrameSender
    receiver: InFrameReceiver
    runtime: RuntimeReport | None = None
    degradation: DegradationReport | None = None
    telemetry: RunTelemetry | None = None


def run_link(
    config: InFrameConfig,
    video: VideoSource,
    camera: CameraModel | None = None,
    schedule: DataFrameSchedule | None = None,
    panel: DisplayPanel | None = None,
    n_camera_frames: int | None = None,
    seed: int = 0,
    warmup_data_frames: int = 1,
    workers: int | None = None,
    faults: FaultPlan | None = None,
    heal: bool | None = None,
    collect_telemetry: bool = True,
) -> LinkRun:
    """Run the full screen->camera loop and score it against ground truth.

    Parameters
    ----------
    config, video, camera, schedule, panel:
        The link's components; camera defaults to the paper's 1280x720
        30 FPS receiver auto-exposed for the panel.
    n_camera_frames:
        Captures to take; defaults to everything the stream duration
        allows.
    seed:
        Seed of the run's noise streams.  Each capture draws from its own
        spawn-keyed generator (``SeedSequence(seed, spawn_key=(index,))``),
        which is what makes parallel execution bit-identical to serial.
    warmup_data_frames:
        Leading data frames excluded from scoring (their cycles are only
        partially covered by captures).
    workers:
        Worker processes for the capture+observe stages.  ``None``/``1``
        runs in-process; ``N > 1`` dispatches chunks to a process pool
        via :mod:`repro.runtime` (same results, bit for bit).  The
        engine falls back to in-process execution when a pool cannot be
        built or keeps crashing.  Either way ``LinkRun.runtime`` carries
        the per-stage profile.
    faults:
        A :class:`~repro.faults.FaultPlan` to inject deterministically
        into this run (compiled here against the run's capture count and
        duration).  ``LinkRun.degradation`` then records what landed.
    heal:
        Whether to decode with the self-healing receiver
        (:meth:`~repro.core.decoder.InFrameDecoder.decide_observations_healed`).
        ``None`` (default) enables healing exactly when a fault plan is
        given; pass False to measure the unhealed baseline under faults.
    collect_telemetry:
        Collect :mod:`repro.obs` metrics and spans for this run into
        ``LinkRun.telemetry``.  Work-scoped telemetry is bit-identical
        across worker counts; pass False to measure the raw pipeline
        (the toggle ``benchmarks/bench_runtime.py`` uses to price the
        instrumentation).
    """
    wall0 = time.perf_counter()
    sender = InFrameSender(config, video, schedule=schedule, panel=panel)
    timeline = sender.timeline()
    if camera is None:
        peak = sender.panel.gamma_curve.peak_luminance * sender.panel.brightness
        camera = CameraModel().auto_exposed(peak)
    receiver = InFrameReceiver(config, sender.geometry, camera, plan=sender.plan())
    max_frames = camera.frames_covering(timeline)
    if max_frames < 1:
        raise ValueError("stream too short for even one camera frame")
    if n_camera_frames is None:
        n_camera_frames = max_frames
    n_camera_frames = min(n_camera_frames, max_frames)
    compiled = None
    if faults is not None:
        compiled = faults.compile(
            n_captures=n_camera_frames,
            fps=camera.fps,
            duration_s=video.duration_s,
            refresh_hz=config.refresh_hz,
        )
    exec_camera: CaptureSource = camera
    if compiled is not None and compiled.perturbs_captures:
        from repro.faults.inject import FaultInjectedCamera

        exec_camera = FaultInjectedCamera(camera, compiled)
    telemetry = Telemetry(track="main") if collect_telemetry else None
    live = live_collector()
    if telemetry is not None and live is not None:
        # The installed LiveCollector samples this run's registry at its
        # snapshot cadence (read-only: the exact-merge contract holds).
        live.attach(telemetry.metrics, prefix="link.")
    execution = execute_link_captures(
        timeline,
        exec_camera,
        receiver.decoder,
        n_camera_frames,
        seed,
        workers=workers,
        telemetry=telemetry,
    )
    captures = execution.captures
    observations = execution.observations
    injected: InjectionLog | None = None
    if compiled is not None:
        from repro.faults.inject import apply_stream_faults

        captures, observations, injected = apply_stream_faults(
            compiled, captures, observations
        )
    heal_on = heal if heal is not None else compiled is not None
    healing: HealingReport | None = None
    timers = execution.timers
    with timers.stage("decide"), _maybe_span(telemetry, "decide"):
        if heal_on:
            decoded_all, healing = receiver.decoder.decide_observations_healed(
                observations
            )
        else:
            decoded_all = receiver.decoder.decide_observations(observations)
    # Score only fully covered data frames: drop warmup and the tail frame
    # whose cycle the capture window may have clipped.
    last_complete = int(
        np.floor(captures[-1].mid_exposure_s * config.refresh_hz / config.tau)
    )
    decoded = [
        d for d in decoded_all if warmup_data_frames <= d.index < last_complete
    ]
    if not decoded:
        raise ValueError(
            "no fully covered data frames; lengthen the video or reduce warmup"
        )
    with timers.stage("score"), _maybe_span(telemetry, "score"):
        truths = [sender.stream.ground_truth(d.index) for d in decoded]
        stats = summarize_link(truths, decoded, config)
    run_telemetry: RunTelemetry | None = None
    if telemetry is not None:
        from repro.core.decoder import record_decode_telemetry, record_healing_telemetry

        record_decode_telemetry(decoded_all, telemetry)
        if healing is not None:
            record_healing_telemetry(healing, telemetry)
        if injected is not None:
            from repro.faults.report import record_injection_telemetry

            record_injection_telemetry(injected, telemetry)
        run_telemetry = telemetry.finish(
            meta={
                "run": "link",
                "seed": seed,
                "frames": len(captures),
                "workers": execution.workers,
                "mode": execution.mode,
            }
        )
    report = RuntimeReport(
        mode=execution.mode,
        workers=execution.workers,
        chunks=execution.chunks,
        frames=len(captures),
        bits=stats.n_data_frames * config.bits_per_frame,
        elapsed_s=time.perf_counter() - wall0,
        retries=execution.retries,
        stages=timers.as_dict(),
        crashed_chunks=execution.crashed_chunks,
        serial_fallback=execution.serial_fallback,
    )
    degradation: DegradationReport | None = None
    if compiled is not None or heal_on:
        from repro.faults.report import DegradationReport as _DegradationReport

        degradation = _DegradationReport(injected=injected, healing=healing)
    return LinkRun(
        stats=stats,
        decoded=decoded,
        truths=truths,
        captures=captures,
        sender=sender,
        receiver=receiver,
        runtime=report,
        degradation=degradation,
        telemetry=run_telemetry,
    )


def _maybe_span(telemetry: Telemetry | None, name: str) -> AbstractContextManager[None]:
    """A work span on the parent track, or a no-op when telemetry is off."""
    if telemetry is None:
        return nullcontext()
    return telemetry.tracer.span(name)


# ----------------------------------------------------------------------
# Transport layer on top of the PHY
# ----------------------------------------------------------------------
_TRANSPORT_MODES = ("plain", "fountain", "arq", "carousel")

#: Bucket edges for the realized LT symbol-degree histogram.  Degrees are
#: small integers dominated by the robust-soliton spike at 1-2; fixed
#: edges keep per-round merges exact (see repro.obs.metrics).
_FOUNTAIN_DEGREE_EDGES = (2.0, 3.0, 4.0, 5.0, 7.0, 10.0, 15.0, 25.0, 50.0)


@dataclass(frozen=True)
class TransportStats:
    """Delivery accounting for one transport session over the PHY.

    ``packets_sent`` counts distinct transmission units the sender
    committed per round (the display may air a batch cyclically to fill
    the clip; duplicates are deduplicated by the receiver and not counted
    again).  ``overhead`` is ``packets_sent / k_packets`` -- 1.0 is the
    lossless floor.
    """

    mode: str
    delivered: bool
    payload_bytes: int
    k_packets: int
    packets_sent: int
    packets_recovered: int
    rounds: int
    overhead: float
    goodput_bps: float
    airtime_s: float

    def row(self) -> str:
        """One formatted summary line for the benchmark tables."""
        status = "ok" if self.delivered else "FAIL"
        return (
            f"{self.mode:8s} {status:4s} k={self.k_packets:3d} "
            f"sent={self.packets_sent:4d} ({self.overhead:4.2f}x) "
            f"rounds={self.rounds}  goodput={self.goodput_bps / 1000:5.2f} kbps"
        )


@dataclass(frozen=True)
class TransportRun:
    """Everything produced by one transport session."""

    payload: bytes | None
    stats: TransportStats
    link_stats: list[LinkStats]
    arq_stats: object | None = None  # ArqStats when mode == "arq"
    runtime: RuntimeReport | None = None  # merged over all forward passes
    degradation: DegradationReport | None = None  # set when faults/heal active
    telemetry: RunTelemetry | None = None  # transport + all rounds, merged


def run_transport_link(
    config: InFrameConfig,
    video: VideoSource,
    payload: bytes,
    mode: str = "fountain",
    *,
    camera: CameraModel | None = None,
    panel: DisplayPanel | None = None,
    rs_n: int = 60,
    rs_k: int = 24,
    packet_bytes: int | None = None,
    session_id: int = 1,
    seed: int = 0,
    max_rounds: int = 6,
    fountain_margin: float = 0.35,
    extra_gob_loss: float = 0.0,
    burst_loss: bool = True,
    feedback_loss: float = 0.0,
    join_offset: int = 0,
    workers: int | None = None,
    faults: FaultPlan | None = None,
    heal: bool | None = None,
    retry_budget: int | None = None,
    deadline_s: float | None = None,
    collect_telemetry: bool = True,
) -> TransportRun:
    """Deliver *payload* over the screen->camera PHY with a transport scheme.

    Each round multiplexes a batch of transport packets onto *video*
    (one packet per data frame, inner RS(rs_n, rs_k) protection), runs
    the full display->capture->decode loop, and feeds whatever packets
    survive to the mode's receiver.  The receiver never sees a
    :class:`~repro.core.framing.FramingPlan`: every parameter it needs
    travels in the packet headers.

    Parameters
    ----------
    mode:
        ``"plain"`` -- sequential DATA packets, single pass (the RS-only
        baseline); ``"fountain"`` -- rateless LT packets until decoded;
        ``"arq"`` -- NACK-driven selective retransmission over a
        simulated feedback channel; ``"carousel"`` -- fountain packets
        starting at ``join_offset``, modelling a receiver that joins an
        ongoing broadcast mid-stream.
    rs_n, rs_k:
        Inner Reed-Solomon code per frame.  The RS(60, 24) default holds
        up on textured content, where 2-bit GOB misreads slip past the
        XOR parity and the decoder must spend budget on *errors* as well
        as erasures (2e + f <= n - k per codeword).
    packet_bytes:
        Payload bytes per packet; defaults to (and is capped at) the
        frame codec's capacity.
    max_rounds:
        Bound on forward passes (each pass replays the clip once).
    fountain_margin:
        Extra fraction of packets sent per fountain/carousel round.
    extra_gob_loss, burst_loss:
        Additional GOB erasures stacked on the PHY's own impairments
        (see :class:`repro.transport.GobLossModel`).
    feedback_loss:
        NACK loss probability for ARQ mode.
    join_offset:
        First carousel symbol the receiver observes.
    workers:
        Worker processes for every forward pass's capture+observe stages
        (see :func:`run_link`); the per-pass profiles are merged into
        ``TransportRun.runtime``.
    faults, heal:
        Fault injection and self-healing per forward pass (see
        :func:`run_link`).  Each round runs under
        :meth:`~repro.faults.FaultPlan.for_round`, so random fault
        processes re-draw per round while steps and blackout windows stay
        put; ``corrupt``/``truncate`` faults additionally damage the
        recovered packet buffers.  ``TransportRun.degradation`` then
        merges the per-round accounting with the delivery outcome.
    retry_budget, deadline_s:
        ARQ degradation bounds (see :class:`repro.transport.ArqSession`):
        a cap on retransmitted packets and a virtual-time deadline.  When
        either fires the session ends early and the partial delivery is
        reported instead of looped on.  Ignored by other modes.
    collect_telemetry:
        Collect :mod:`repro.obs` telemetry: each round's link telemetry
        is merged into one session record alongside ``transport.*``
        counters, ``transport.round`` spans, the realized LT degree
        histogram (fountain/carousel) and the ARQ accounting, exposed as
        ``TransportRun.telemetry``.
    """
    from repro.transport.arq import ArqReceiver, ArqSender, ArqSession
    from repro.transport.carousel import BroadcastCarousel, CarouselReceiver
    from repro.transport.erasures import GobLossModel
    from repro.transport.packet import (
        FramePacketCodec,
        PacketSchedule,
        PacketSlotAccumulator,
    )

    if mode not in _TRANSPORT_MODES:
        raise ValueError(f"mode must be one of {_TRANSPORT_MODES}, got {mode!r}")
    if not payload:
        raise ValueError("payload must not be empty")
    payload = bytes(payload)
    codec = FramePacketCodec(config, rs_n=rs_n, rs_k=rs_k)
    chunk = codec.max_payload_bytes
    if packet_bytes is not None:
        chunk = min(int(packet_bytes), chunk)
    k_packets = (len(payload) + chunk - 1) // chunk
    loss = GobLossModel(extra_gob_loss, burst=burst_loss) if extra_gob_loss else None
    loss_rng = np.random.default_rng((seed, 0xEA5E))
    link_stats: list[LinkStats] = []
    runtime_reports: list[RuntimeReport] = []
    link_degradations: list[DegradationReport | None] = []
    packet_faults = faults.packet_faults() if faults is not None else None
    counters = {
        "sent": 0,
        "recovered": 0,
        "rounds": 0,
        "corrupted": 0,
        "truncated": 0,
        "blackout_rounds": 0,
    }
    telemetry = Telemetry(track="transport") if collect_telemetry else None
    live = live_collector()
    if telemetry is not None and live is not None:
        live.attach(telemetry.metrics, prefix="transport.")

    def forward(packets: list[bytes]) -> list[bytes]:
        """One PHY pass: multiplex the batch, film it, decode packets."""
        counters["rounds"] += 1
        counters["sent"] += len(packets)
        round_plan = (
            faults.for_round(counters["rounds"]) if faults is not None else None
        )
        schedule = PacketSchedule(config, codec, packets)
        span: AbstractContextManager[None] = (
            telemetry.tracer.span(
                "transport.round", round=counters["rounds"], packets=len(packets)
            )
            if telemetry is not None
            else nullcontext()
        )
        with span:
            run = run_link(
                config,
                video,
                camera=camera,
                schedule=schedule,
                panel=panel,
                seed=seed + counters["rounds"],
                workers=workers,
                faults=round_plan,
                heal=heal,
                collect_telemetry=collect_telemetry,
            )
        if telemetry is not None:
            telemetry.merge_run(run.telemetry)
        link_stats.append(run.stats)
        link_degradations.append(run.degradation)
        if run.runtime is not None:
            runtime_reports.append(run.runtime)
        accumulator = PacketSlotAccumulator(codec, schedule.n_packets)
        for frame in run.decoded:
            if loss is not None:
                frame = loss.degrade(frame, loss_rng)
            accumulator.add_frame(frame)
        raws = accumulator.decode_packets()
        if packet_faults is not None and packet_faults.active:
            raws, n_corrupt, n_trunc = packet_faults.apply(raws, counters["rounds"])
            counters["corrupted"] += n_corrupt
            counters["truncated"] += n_trunc
        if (faults is not None or heal) and not raws:
            # A forward pass that recovered nothing: an occlusion span
            # (or equivalent) blacked the round out; the carousel and
            # ARQ loops simply resume on the next pass.
            counters["blackout_rounds"] += 1
        counters["recovered"] += len(raws)
        return raws

    delivered_payload: bytes | None = None
    arq_stats = None
    delivered_bytes = 0
    deadline_hit = False
    budget_exhausted = False

    if mode == "plain":
        sender = ArqSender(payload, chunk, session_id=session_id)
        receiver = ArqReceiver()
        for raw in forward(sender.all_packets()):
            receiver.receive(raw)
        delivered_bytes = receiver.received_bytes
        if receiver.complete:
            delivered_payload = receiver.payload()
    elif mode == "arq":
        session = ArqSession(
            payload,
            chunk,
            forward,
            session_id=session_id,
            feedback_loss=feedback_loss,
            packet_airtime_s=config.tau / config.refresh_hz,
            max_rounds=max_rounds,
            retry_budget=retry_budget,
            deadline_s=deadline_s,
            backoff_jitter=0.1 if faults is not None else 0.0,
            rng=np.random.default_rng((seed, 0xFEED)),
        )
        arq_stats, delivered_payload = session.run()
        delivered_bytes = arq_stats.delivered_bytes
        deadline_hit = arq_stats.deadline_hit
        budget_exhausted = arq_stats.budget_exhausted
        if telemetry is not None:
            from repro.transport.arq import record_arq_telemetry

            record_arq_telemetry(arq_stats, telemetry)
    else:  # fountain / carousel
        carousel = BroadcastCarousel(payload, chunk, session_id=session_id)
        receiver = CarouselReceiver()
        next_seq = join_offset if mode == "carousel" else 0
        for _ in range(max_rounds):
            missing = (
                carousel.k if receiver.decoder is None else receiver.decoder.n_missing
            )
            batch = max(2, int(np.ceil(missing * (1.0 + fountain_margin))))
            if telemetry is not None:
                telemetry.metrics.histogram(
                    "fountain.degree", _FOUNTAIN_DEGREE_EDGES
                ).observe_array(carousel.symbol_degrees(next_seq, batch))
            for raw in forward(carousel.packets(next_seq, batch)):
                receiver.receive(raw)
            next_seq += batch
            if receiver.complete:
                break
        if telemetry is not None:
            telemetry.metrics.counter("transport.rejected_packets").inc(
                receiver.n_rejected
            )
            telemetry.metrics.counter("transport.symbols_consumed").inc(
                receiver.symbols_consumed
            )
            if receiver.join_offset is not None:
                telemetry.metrics.gauge("transport.join_offset", scope=WORK).set(
                    receiver.join_offset
                )
            if receiver.decoder is not None:
                telemetry.metrics.counter("fountain.redundant_symbols").inc(
                    receiver.decoder.n_redundant
                )
        if receiver.decoder is not None:
            delivered_bytes = min(
                len(payload), receiver.decoder.n_decoded * chunk
            )
        if receiver.complete:
            delivered_payload = receiver.payload()

    delivered = delivered_payload == payload
    if delivered:
        delivered_bytes = len(payload)
    airtime = counters["rounds"] * video.duration_s
    goodput = len(payload) * 8.0 / airtime if delivered and airtime > 0 else 0.0
    stats = TransportStats(
        mode=mode,
        delivered=delivered,
        payload_bytes=len(payload),
        k_packets=k_packets,
        packets_sent=counters["sent"],
        packets_recovered=counters["recovered"],
        rounds=counters["rounds"],
        overhead=counters["sent"] / k_packets,
        goodput_bps=goodput,
        airtime_s=airtime,
    )
    degradation: DegradationReport | None = None
    if faults is not None or heal:
        from repro.faults.report import DegradationReport as _DegradationReport
        from repro.faults.report import InjectionLog as _InjectionLog

        degradation = _DegradationReport.merge_link_reports(
            link_degradations,
            total_bytes=len(payload),
            delivered_bytes=delivered_bytes,
            partial=(not delivered) and delivered_bytes > 0,
            blackout_rounds=counters["blackout_rounds"],
            deadline_hit=deadline_hit,
            budget_exhausted=budget_exhausted,
        )
        if counters["corrupted"] or counters["truncated"]:
            injected = degradation.injected or _InjectionLog()
            degradation = dataclass_replace(
                degradation,
                injected=dataclass_replace(
                    injected,
                    corrupted_packets=counters["corrupted"],
                    truncated_packets=counters["truncated"],
                ),
            )
    run_telemetry: RunTelemetry | None = None
    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.counter("transport.rounds").inc(counters["rounds"])
        metrics.counter("transport.packets_sent").inc(counters["sent"])
        metrics.counter("transport.packets_recovered").inc(counters["recovered"])
        metrics.counter("transport.corrupted_packets").inc(counters["corrupted"])
        metrics.counter("transport.truncated_packets").inc(counters["truncated"])
        metrics.counter("transport.blackout_rounds").inc(counters["blackout_rounds"])
        run_telemetry = telemetry.finish(
            meta={
                "run": "transport",
                "transport_mode": mode,
                "seed": seed,
                "delivered": delivered,
                "rounds": counters["rounds"],
            }
        )
    return TransportRun(
        payload=delivered_payload if delivered else None,
        stats=stats,
        link_stats=link_stats,
        arq_stats=arq_stats,
        runtime=RuntimeReport.merge(runtime_reports),
        degradation=degradation,
        telemetry=run_telemetry,
    )
