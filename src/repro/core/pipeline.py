"""End-to-end API: sender, receiver, and the one-call link runner.

:class:`InFrameSender` wires a video source and a data schedule into a
playable display timeline; :class:`InFrameReceiver` wires the decoder and
payload assembler for a camera; :func:`run_link` runs the whole loop --
multiplex, display, capture, decode, score -- and returns Figure-7 style
statistics.  This is the surface the examples and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.camera.capture import CameraModel, CapturedFrame
from repro.core.config import InFrameConfig
from repro.core.decoder import DecodedDataFrame, InFrameDecoder
from repro.core.framing import (
    FramingPlan,
    PayloadAssembler,
    PayloadSchedule,
    PseudoRandomSchedule,
)
from repro.core.geometry import FrameGeometry
from repro.core.metrics import LinkStats, summarize_link
from repro.core.multiplexer import DataFrameSchedule, MultiplexedStream
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.video.source import VideoSource


class InFrameSender:
    """Sender: multiplexes a data schedule onto a video for a given panel.

    Parameters
    ----------
    config:
        InFrame parameters; ``refresh_hz``/``video_fps`` must match the
        panel and video.
    video:
        The primary content (its shape must equal the panel's).
    schedule:
        Data supplier; defaults to the paper's pseudo-random generator.
    panel:
        The display; defaults to the paper's 120 Hz panel at the video's
        resolution.
    """

    def __init__(
        self,
        config: InFrameConfig,
        video: VideoSource,
        schedule: DataFrameSchedule | None = None,
        panel: DisplayPanel | None = None,
    ) -> None:
        if panel is None:
            panel = DisplayPanel(
                width=video.width, height=video.height, refresh_hz=config.refresh_hz
            )
        if (panel.height, panel.width) != (video.height, video.width):
            raise ValueError(
                f"panel {panel.height}x{panel.width} does not match video "
                f"{video.height}x{video.width}"
            )
        if abs(panel.refresh_hz - config.refresh_hz) > 1e-9:
            raise ValueError(
                f"panel refresh {panel.refresh_hz} does not match config "
                f"refresh_hz {config.refresh_hz}"
            )
        self.config = config
        self.video = video
        self.panel = panel
        self.schedule = schedule if schedule is not None else PseudoRandomSchedule(config)
        self.stream = MultiplexedStream(
            config, video, self.schedule, gamma_curve=panel.gamma_curve
        )

    @property
    def geometry(self) -> FrameGeometry:
        """The Block-grid placement on this panel."""
        return self.stream.geometry

    def timeline(self) -> DisplayTimeline:
        """The emitted-light timeline of the multiplexed playback."""
        return DisplayTimeline(self.panel, self.stream)

    def plan(self) -> FramingPlan | None:
        """The framing plan, when the schedule carries a payload."""
        if isinstance(self.schedule, PayloadSchedule):
            return self.schedule.plan
        return None


class InFrameReceiver:
    """Receiver: decodes captures and (optionally) reassembles payloads."""

    def __init__(
        self,
        config: InFrameConfig,
        geometry: FrameGeometry,
        camera: CameraModel,
        plan: FramingPlan | None = None,
        inset: float = 0.2,
    ) -> None:
        self.config = config
        self.camera = camera
        self.decoder = InFrameDecoder(
            config,
            geometry,
            camera.height,
            camera.width,
            inset=inset,
            screen_rect=camera.screen_rect() if camera.screen_fill < 1.0 else None,
            view=camera.view,
        )
        self.plan = plan

    def decode(self, captures: list[CapturedFrame]) -> list[DecodedDataFrame]:
        """Decode captured frames into data-frame verdicts."""
        return self.decoder.decode(captures)

    def assemble_payload(self, decoded: list[DecodedDataFrame]) -> bytes:
        """Reassemble the payload carried by the decoded frames.

        Requires the sender's :class:`FramingPlan` (constructor argument).
        """
        if self.plan is None:
            raise ValueError("receiver was built without a framing plan")
        assembler = PayloadAssembler(self.config, self.plan)
        for frame in decoded:
            assembler.add_frame(frame)
        return assembler.payload()


@dataclass(frozen=True)
class LinkRun:
    """Everything produced by one end-to-end link simulation."""

    stats: LinkStats
    decoded: list[DecodedDataFrame]
    truths: list[np.ndarray]
    captures: list[CapturedFrame]
    sender: InFrameSender
    receiver: InFrameReceiver


def run_link(
    config: InFrameConfig,
    video: VideoSource,
    camera: CameraModel | None = None,
    schedule: DataFrameSchedule | None = None,
    panel: DisplayPanel | None = None,
    n_camera_frames: int | None = None,
    seed: int = 0,
    warmup_data_frames: int = 1,
) -> LinkRun:
    """Run the full screen->camera loop and score it against ground truth.

    Parameters
    ----------
    config, video, camera, schedule, panel:
        The link's components; camera defaults to the paper's 1280x720
        30 FPS receiver auto-exposed for the panel.
    n_camera_frames:
        Captures to take; defaults to everything the stream duration
        allows.
    seed:
        Seed for the sensor-noise generator.
    warmup_data_frames:
        Leading data frames excluded from scoring (their cycles are only
        partially covered by captures).
    """
    sender = InFrameSender(config, video, schedule=schedule, panel=panel)
    timeline = sender.timeline()
    if camera is None:
        peak = sender.panel.gamma_curve.peak_luminance * sender.panel.brightness
        camera = CameraModel().auto_exposed(peak)
    receiver = InFrameReceiver(config, sender.geometry, camera, plan=sender.plan())
    rng = np.random.default_rng(seed)
    max_frames = camera.frames_covering(timeline)
    if max_frames < 1:
        raise ValueError("stream too short for even one camera frame")
    if n_camera_frames is None:
        n_camera_frames = max_frames
    n_camera_frames = min(n_camera_frames, max_frames)
    captures = camera.capture_sequence(timeline, n_camera_frames, rng=rng)
    decoded_all = receiver.decode(captures)
    # Score only fully covered data frames: drop warmup and the tail frame
    # whose cycle the capture window may have clipped.
    last_complete = int(
        np.floor(captures[-1].mid_exposure_s * config.refresh_hz / config.tau)
    )
    decoded = [
        d for d in decoded_all if warmup_data_frames <= d.index < last_complete
    ]
    if not decoded:
        raise ValueError(
            "no fully covered data frames; lengthen the video or reduce warmup"
        )
    truths = [sender.stream.ground_truth(d.index) for d in decoded]
    stats = summarize_link(truths, decoded, config)
    return LinkRun(
        stats=stats,
        decoded=decoded,
        truths=truths,
        captures=captures,
        sender=sender,
        receiver=receiver,
    )
