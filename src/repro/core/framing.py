"""Framing: payload bytes <-> data-frame bit grids.

Three schedules feed the multiplexer:

* :class:`ZeroSchedule` -- all-zero grids (carrier off; control condition);
* :class:`PseudoRandomSchedule` -- seeded random bits, the paper's workload
  ("a pseudo-random data generator with a pre-set seed");
* :class:`PayloadSchedule` -- real byte payloads protected by CRC-16,
  Reed-Solomon coding and interleaving, consumed on the receive side by
  :class:`PayloadAssembler`.

The payload pipeline (sender):

1. ``buffer = length(4B, big-endian) || payload || crc16(payload)``;
2. pad to a whole number of RS messages, one RS(n, k) codeword each;
3. interleave the codeword bytes (rows = codewords, cols = n) so a
   rolling-shutter burst erases a few bytes of *many* codewords instead of
   many bytes of one;
4. unpack to bits, slice into ``bits_per_frame`` chunks (zero-padded), and
   lay each chunk on the Block grid with GOB parity.

The receiver reverses the pipeline, converting unavailable GOBs into byte
erasures for the RS decoder -- the receiver shares the sender's
:class:`FramingPlan` out of band, the way a channel profile would be
provisioned.  For a sessionful channel with self-describing headers (no
out-of-band plan), rateless coding and retransmission, see
:mod:`repro.transport`, which reuses this module's bit-grid slicing via
:func:`slice_bits_to_frames` and :func:`decoded_frame_bits`.

Erasure amplification: a GOB carries 3 bits, so one message byte spans 3-4
GOBs and a GOB-loss rate ``p`` becomes a byte-erasure rate of roughly
``1 - (1 - p)**3.5``.  Size the RS overhead accordingly (parity fraction
comfortably above the amplified rate), or rely on ``repeat=True`` --
retransmission passes shrink the *unknown* GOB set geometrically, which is
how the lossy video-content channel delivers payloads in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import InFrameConfig
from repro.core.decoder import DecodedDataFrame
from repro.core.parity import data_bits_to_grid, grid_to_data_bits
from repro.ecc.crc import crc16_append, crc16_verify
from repro.ecc.interleaver import BlockInterleaver
from repro.ecc.reed_solomon import ReedSolomonCodec, RSDecodingError


class FrameFormatError(ValueError):
    """Raised when a received payload fails structural or integrity checks."""


# ----------------------------------------------------------------------
# Bit-grid slicing (shared by the payload pipeline and repro.transport)
# ----------------------------------------------------------------------
def slice_bits_to_frames(bits: np.ndarray, config: InFrameConfig) -> np.ndarray:
    """Slice a flat bit vector into per-data-frame rows (zero-padded).

    Returns a ``(n_frames, bits_per_frame)`` boolean array; the last row
    is padded with zeros.  This is the sender-side slicing both
    :class:`PayloadSchedule` and the transport packetizer use before
    laying each row on the Block grid with :func:`data_bits_to_grid`.
    """
    bits = np.asarray(bits).ravel().astype(np.uint8)
    per_frame = config.bits_per_frame
    n_frames = max(1, (bits.size + per_frame - 1) // per_frame)
    padded = np.zeros(n_frames * per_frame, dtype=np.uint8)
    padded[: bits.size] = bits
    return padded.reshape(n_frames, per_frame).astype(bool)


def decoded_frame_bits(
    decoded: DecodedDataFrame, config: InFrameConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Extract one decoded frame's data bits and their known-mask.

    Returns ``(bits, known)``, both of length ``config.bits_per_frame``.
    A bit is *known* when its GOB was available and its GOB code checked
    out; everything else must be treated as an erasure.  This is the
    receiver-side inverse of :func:`slice_bits_to_frames`, shared by
    :class:`PayloadAssembler` and the transport frame codec.
    """
    bits = grid_to_data_bits(decoded.bits, config)
    gob_ok = decoded.gob_available & decoded.gob_parity_ok
    m = config.gob_size
    block_mask = np.kron(gob_ok, np.ones((m, m), dtype=bool))
    known = grid_to_data_bits(block_mask, config)
    return bits, known


class ZeroSchedule:
    """All-zero data frames: the multiplexed stream equals the plain video."""

    def __init__(self, config: InFrameConfig) -> None:
        self.config = config
        self._grid = np.zeros((config.block_rows, config.block_cols), dtype=bool)

    def bits(self, index: int) -> np.ndarray:
        """Return the all-zero grid for any index."""
        return self._grid


class PseudoRandomSchedule:
    """Seeded random data frames (the paper's experimental workload)."""

    def __init__(self, config: InFrameConfig, seed: int = 2014) -> None:
        self.config = config
        self.seed = int(seed)

    def bits(self, index: int) -> np.ndarray:
        """Grid for data frame *index*: random data bits plus GOB parity."""
        if index < 0:
            raise IndexError(f"data frame index must be >= 0, got {index}")
        rng = np.random.default_rng((self.seed, index))
        data = rng.random(self.config.bits_per_frame) < 0.5
        return data_bits_to_grid(data, self.config)

    def data_bits(self, index: int) -> np.ndarray:
        """The data bits (without parity) for data frame *index*."""
        rng = np.random.default_rng((self.seed, index))
        return rng.random(self.config.bits_per_frame) < 0.5


@dataclass(frozen=True)
class FramingPlan:
    """Out-of-band parameters shared by sender and receiver."""

    rs_n: int = 60
    rs_k: int = 40
    n_codewords: int = 0  # filled in by PayloadSchedule
    filler_seed: int = 77

    @property
    def message_bytes(self) -> int:
        """Total interleaved message size in bytes."""
        return self.n_codewords * self.rs_n


class PayloadSchedule:
    """Carry a byte payload across data frames with CRC + RS + interleaving.

    Parameters
    ----------
    config:
        InFrame parameters (defines bits per data frame).
    payload:
        The bytes to deliver.
    rs_n, rs_k:
        Reed-Solomon codeword/message sizes.
    repeat:
        If True the whole message cycles forever, so streams longer than
        one message keep retransmitting (receivers can combine passes).
    """

    def __init__(
        self,
        config: InFrameConfig,
        payload: bytes,
        rs_n: int = 60,
        rs_k: int = 40,
        repeat: bool = True,
    ) -> None:
        if not payload:
            raise ValueError("payload must not be empty")
        self.config = config
        self.payload = bytes(payload)
        self.repeat = repeat
        codec = ReedSolomonCodec(rs_n, rs_k)
        buffer = len(self.payload).to_bytes(4, "big") + crc16_append(self.payload)
        if len(buffer) % rs_k:
            buffer += bytes(rs_k - len(buffer) % rs_k)
        codewords = [
            codec.encode(buffer[i : i + rs_k]) for i in range(0, len(buffer), rs_k)
        ]
        self.plan = FramingPlan(rs_n=rs_n, rs_k=rs_k, n_codewords=len(codewords))
        interleaver = BlockInterleaver(len(codewords), rs_n)
        message = interleaver.interleave(b"".join(codewords))
        bits = np.unpackbits(np.frombuffer(message, dtype=np.uint8))
        self._frame_bits = slice_bits_to_frames(bits, config)

    @property
    def n_payload_frames(self) -> int:
        """Data frames one full message occupies."""
        return self._frame_bits.shape[0]

    def bits(self, index: int) -> np.ndarray:
        """Grid for data frame *index* (cycling when ``repeat``)."""
        if index < 0:
            raise IndexError(f"data frame index must be >= 0, got {index}")
        if index >= self.n_payload_frames and not self.repeat:
            raise IndexError(
                f"data frame {index} beyond single-shot payload "
                f"({self.n_payload_frames} frames)"
            )
        frame_bits = self._frame_bits[index % self.n_payload_frames]
        return data_bits_to_grid(frame_bits, self.config)


class PayloadAssembler:
    """Receiver-side inverse of :class:`PayloadSchedule`.

    Feed it decoded data frames (any order, duplicates allowed -- later
    passes fill GOBs earlier passes missed) and call :meth:`payload` to
    attempt reconstruction.

    Parameters
    ----------
    config, plan:
        The sender's configuration and framing plan.
    combine:
        How repeated observations of the same bit are merged across
        retransmission passes.  ``"first"`` (default) keeps the first
        confident reading; ``"vote"`` takes the majority, which helps when
        per-pass errors are independent (e.g. noise-driven) but not
        against the dominant *systematic* errors of textured content,
        where every pass misreads the same Blocks the same way.
    """

    def __init__(
        self, config: InFrameConfig, plan: FramingPlan, combine: str = "first"
    ) -> None:
        if plan.n_codewords < 1:
            raise ValueError("plan.n_codewords must be set (take it from the sender)")
        if combine not in ("vote", "first"):
            raise ValueError(f"combine must be 'vote' or 'first', got {combine!r}")
        self.config = config
        self.plan = plan
        self.combine = combine
        total_bits = plan.message_bytes * 8
        per_frame = config.bits_per_frame
        self.n_payload_frames = (total_bits + per_frame - 1) // per_frame
        n_slots = self.n_payload_frames * per_frame
        self._bits = np.zeros(n_slots, dtype=bool)
        self._known = np.zeros(n_slots, dtype=bool)
        self._votes = np.zeros(n_slots, dtype=np.int32)

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add_frame(self, decoded: DecodedDataFrame) -> None:
        """Merge one decoded data frame's available GOBs into the message."""
        slot = decoded.index % self.n_payload_frames
        frame_bits, frame_known = decoded_frame_bits(decoded, self.config)
        start = slot * self.config.bits_per_frame
        stop = start + self.config.bits_per_frame
        if self.combine == "vote":
            signed = np.where(frame_bits, 1, -1)
            self._votes[start:stop][frame_known] += signed[frame_known]
            self._bits[start:stop] = self._votes[start:stop] > 0
            self._known[start:stop] |= frame_known
        else:
            fresh = frame_known & ~self._known[start:stop]
            self._bits[start:stop][fresh] = frame_bits[fresh]
            self._known[start:stop] |= frame_known

    def coverage(self) -> float:
        """Fraction of message bits currently known."""
        return float(self._known[: self.plan.message_bytes * 8].mean())

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def payload(self) -> bytes:
        """Reconstruct and verify the payload.

        Raises
        ------
        FrameFormatError:
            If too many codewords are uncorrectable or the CRC/length
            checks fail.
        """
        total_bits = self.plan.message_bytes * 8
        bits = self._bits[:total_bits]
        known = self._known[:total_bits]
        message = np.packbits(bits.astype(np.uint8)).tobytes()
        byte_known = known.reshape(-1, 8).all(axis=1)
        erased_positions = [int(i) for i in np.flatnonzero(~byte_known)]

        interleaver = BlockInterleaver(self.plan.n_codewords, self.plan.rs_n)
        stream = interleaver.deinterleave(message)
        erased_original = interleaver.deinterleave_positions(erased_positions)
        codec = ReedSolomonCodec(self.plan.rs_n, self.plan.rs_k)
        buffer = bytearray()
        for cw_index in range(self.plan.n_codewords):
            start = cw_index * self.plan.rs_n
            word = stream[start : start + self.plan.rs_n]
            erasures = [p - start for p in erased_original if start <= p < start + self.plan.rs_n]
            try:
                decoded, _ = codec.decode(word, erasure_positions=erasures)
            except RSDecodingError as exc:
                raise FrameFormatError(
                    f"codeword {cw_index} uncorrectable "
                    f"({len(erasures)} erasures): {exc}"
                ) from exc
            buffer.extend(decoded)
        length = int.from_bytes(buffer[:4], "big")
        if not (0 < length <= len(buffer) - 6):
            raise FrameFormatError(f"implausible payload length {length}")
        payload_with_crc = bytes(buffer[4 : 4 + length + 2])
        if not crc16_verify(payload_with_crc):
            raise FrameFormatError("payload CRC mismatch after RS decoding")
        return payload_with_crc[:-2]
