"""Frame multiplexing (paper Section 3.2 and Figure 2).

Given a 30 FPS video and a data-frame schedule, produce the 120 Hz display
stream: each video frame ``V_i`` is duplicated ``refresh / fps`` times and
each duplicate carries ``+M`` or ``-M`` alternately, where ``M`` is the
smoothed, clip-aware chessboard modulation.  Even displayed frames carry
``+``, odd carry ``-``, so every consecutive (even, odd) pair is exactly
complementary and fuses to ``V_i`` for the viewer.

:class:`MultiplexedStream` implements the display scheduler's
:class:`~repro.display.scheduler.FrameSource` protocol lazily -- frames
are rendered on demand, so multi-second streams cost no memory.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.config import InFrameConfig
from repro.core.encoder import DataFrameEncoder
from repro.display.gamma import GammaCurve
from repro.core.geometry import FrameGeometry
from repro.video.source import VideoSource


class DataFrameSchedule(Protocol):
    """Supplies the Block bit grid for each data frame index."""

    def bits(self, index: int) -> np.ndarray:
        """Full Block grid (parity included) for data frame *index*."""
        ...


class MultiplexedStream:
    """The multiplexed display stream: video plus complementary data frames.

    Parameters
    ----------
    config:
        InFrame parameters (tau, delta, waveform, clock rates...).
    video:
        The primary content.  Its fps must match ``config.video_fps``.
    schedule:
        Data-frame bit supplier (see :mod:`repro.core.framing`).
    n_display_frames:
        Optional stream length; defaults to the full video
        (``video.n_frames * config.frame_duplication`` frames).
    gamma_curve:
        The target panel's transfer curve, needed when
        ``config.gamma_compensation`` is on.
    """

    def __init__(
        self,
        config: InFrameConfig,
        video: VideoSource,
        schedule: DataFrameSchedule,
        n_display_frames: int | None = None,
        gamma_curve: GammaCurve | None = None,
    ) -> None:
        if abs(video.fps - config.video_fps) > 1e-9:
            raise ValueError(
                f"video fps {video.fps} does not match config.video_fps {config.video_fps}"
            )
        self.config = config
        self.video = video
        self.schedule = schedule
        self.geometry = FrameGeometry(config, video.height, video.width)
        self.encoder = DataFrameEncoder(config, self.geometry, gamma_curve=gamma_curve)
        max_frames = video.n_frames * config.frame_duplication
        if n_display_frames is None:
            n_display_frames = max_frames
        if not (1 <= n_display_frames <= max_frames):
            raise ValueError(
                f"n_display_frames must be in [1, {max_frames}], got {n_display_frames}"
            )
        self._n_frames = int(n_display_frames)
        self._bits_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # FrameSource protocol
    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        """Display frames in the stream."""
        return self._n_frames

    def frame(self, index: int) -> np.ndarray:
        """Render displayed frame *index* (pixel values, float32)."""
        if not (0 <= index < self._n_frames):
            raise IndexError(f"frame index {index} outside [0, {self._n_frames})")
        video_frame = self.video.frame(index // self.config.frame_duplication)
        data_index, step = divmod(index, self.config.tau)
        bits_now = self._bits(data_index)
        bits_next = self._bits(data_index + 1)
        modulation = self.encoder.modulation_field(video_frame, bits_now, bits_next, step)
        sign = np.float32(1.0 if index % 2 == 0 else -1.0)
        offset = sign * modulation + self.encoder.compensation_field(video_frame, modulation)
        if video_frame.ndim == 3:
            offset = offset[..., None]
        return np.clip(video_frame + offset, 0.0, 255.0).astype(np.float32)

    # ------------------------------------------------------------------
    # Introspection used by experiments and tests
    # ------------------------------------------------------------------
    @property
    def n_data_frames(self) -> int:
        """Data frames whose cycle starts inside the stream."""
        return (self._n_frames + self.config.tau - 1) // self.config.tau

    def ground_truth(self, data_index: int) -> np.ndarray:
        """The Block grid actually transmitted for data frame *data_index*."""
        return self._bits(data_index).copy()

    def _bits(self, data_index: int) -> np.ndarray:
        cached = self._bits_cache.get(data_index)
        if cached is not None:
            return cached
        grid = np.asarray(self.schedule.bits(data_index), dtype=bool)
        expected = (self.config.block_rows, self.config.block_cols)
        if grid.shape != expected:
            raise ValueError(f"schedule returned grid {grid.shape}, expected {expected}")
        self._bits_cache[data_index] = grid
        if len(self._bits_cache) > 64:
            self._bits_cache.pop(next(iter(self._bits_cache)))
        return grid
