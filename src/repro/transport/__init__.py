"""Transport layer over the InFrame PHY.

Turns the one-shot :func:`~repro.core.pipeline.run_link` physical layer
into a sessionful data channel:

* :mod:`~repro.transport.packet` -- self-describing packet headers
  (magic, session, sequence, lengths, CRC-16) and
  :class:`FramePacketCodec`, which maps whole packets onto single data
  frames with inner RS erasure protection;
* :mod:`~repro.transport.fountain` -- rateless LT coding (robust-soliton
  degrees, peeling decoder) so any ``k(1+eps)`` received packets recover
  the payload regardless of which loss bursts occurred;
* :mod:`~repro.transport.arq` -- NACK-driven selective retransmission
  with timeout/backoff over a simulated feedback channel;
* :mod:`~repro.transport.carousel` -- a broadcast carousel cycling
  fountain packets for receivers that join mid-stream;
* :mod:`~repro.transport.erasures` -- GOB-loss channel models for
  benchmarks and stress experiments.

The end-to-end entry point is
:func:`repro.core.pipeline.run_transport_link`; the CLI is
``python -m repro.tools.transfer``.
"""

from repro.transport.arq import (
    ArqReceiver,
    ArqSender,
    ArqSession,
    ArqStats,
    parse_nack,
)
from repro.transport.carousel import BroadcastCarousel, CarouselReceiver
from repro.transport.erasures import GobLossModel, simulate_packet_channel
from repro.transport.fountain import (
    LTDecoder,
    LTEncoder,
    robust_soliton_distribution,
)
from repro.transport.packet import (
    FLAG_FIN,
    HEADER_BYTES,
    MAGIC,
    PACKET_OVERHEAD,
    FramePacketCodec,
    Packet,
    PacketFormatError,
    PacketHeader,
    PacketSchedule,
    PacketType,
    build_packet,
    parse_header,
    parse_packet,
    scan_packets,
)

__all__ = [
    "ArqReceiver",
    "ArqSender",
    "ArqSession",
    "ArqStats",
    "BroadcastCarousel",
    "CarouselReceiver",
    "FLAG_FIN",
    "FramePacketCodec",
    "GobLossModel",
    "HEADER_BYTES",
    "LTDecoder",
    "LTEncoder",
    "MAGIC",
    "PACKET_OVERHEAD",
    "Packet",
    "PacketFormatError",
    "PacketHeader",
    "PacketSchedule",
    "PacketType",
    "build_packet",
    "parse_header",
    "parse_nack",
    "parse_packet",
    "robust_soliton_distribution",
    "scan_packets",
    "simulate_packet_channel",
]
