"""GOB-loss channel models for transport experiments.

Two uses:

* inside :func:`repro.core.pipeline.run_transport_link`, an *extra* loss
  process stacked on the PHY's own impairments, so experiments can dial
  the erasure rate past what the content alone produces (occlusions,
  hands in front of the signage, harsher rolling-shutter bands);
* in :mod:`benchmarks.bench_transport` and unit tests, a fast synthetic
  packet channel -- perfect bit decisions, masked availability -- that
  sweeps loss rates without simulating photons.

Bursts erase contiguous GOB *rows*, matching the dominant real loss
shape: a rolling-shutter band cancels the chessboard across a horizontal
stripe of the frame.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import check_in_range, check_positive_int
from repro.core.decoder import DecodedDataFrame
from repro.transport.packet import FramePacketCodec


@dataclass(frozen=True)
class GobLossModel:
    """Random or bursty GOB erasures at a target rate.

    Attributes
    ----------
    rate:
        Expected fraction of GOBs erased per frame.
    burst:
        If True, losses arrive as contiguous GOB-row bands (the
        rolling-shutter shape) instead of independent GOBs.
    mean_burst_rows:
        Mean band height in GOB rows when ``burst`` is set.
    """

    rate: float
    burst: bool = False
    mean_burst_rows: int = 3

    def __post_init__(self) -> None:
        check_in_range(self.rate, "rate", 0.0, 1.0)
        check_positive_int(self.mean_burst_rows, "mean_burst_rows")

    def mask(
        self, gob_shape: tuple[int, int], rng: np.random.Generator
    ) -> np.ndarray:
        """One frame's erasure mask over the GOB grid (True = erased)."""
        rows, cols = gob_shape
        if self.rate <= 0.0:
            return np.zeros(gob_shape, dtype=bool)
        if not self.burst:
            return rng.random(gob_shape) < self.rate
        mask = np.zeros(gob_shape, dtype=bool)
        target = self.rate * rows * cols
        # Draw geometric-length bands at random rows until the target
        # erased mass is reached.
        while mask.sum() < target:
            height = min(rows, 1 + int(rng.geometric(1.0 / self.mean_burst_rows)))
            top = int(rng.integers(0, rows))
            mask[top : top + height, :] = True
            if mask.all():
                break
        return mask

    def degrade(
        self, decoded: DecodedDataFrame, rng: np.random.Generator
    ) -> DecodedDataFrame:
        """A copy of *decoded* with extra GOBs marked unavailable."""
        erased = self.mask(decoded.gob_available.shape, rng)
        return replace(decoded, gob_available=decoded.gob_available & ~erased)


def perfect_frame(
    codec: FramePacketCodec, packet_bytes: bytes, index: int = 0
) -> DecodedDataFrame:
    """A noiselessly decoded data frame carrying one packet.

    The synthetic starting point for loss sweeps: bits are exact and every
    GOB available; apply a :class:`GobLossModel` to knock GOBs out.
    """
    config = codec.config
    grid = codec.encode(packet_bytes)
    gob_shape = (config.gob_rows, config.gob_cols)
    return DecodedDataFrame(
        index=index,
        bits=grid,
        confident=np.ones_like(grid, dtype=bool),
        gob_available=np.ones(gob_shape, dtype=bool),
        gob_parity_ok=np.ones(gob_shape, dtype=bool),
        noise_map=np.zeros(grid.shape, dtype=np.float32),
        threshold=0.0,
        n_captures=1,
    )


def simulate_packet_channel(
    codec: FramePacketCodec,
    packets: list[bytes],
    loss: GobLossModel,
    rng: np.random.Generator,
) -> list[bytes]:
    """Run packets through encode -> GOB loss -> frame decode.

    Returns the raw packet buffers that survive (frame padding included,
    as on the real link); frames whose inner RS decode fails are dropped.
    """
    delivered: list[bytes] = []
    for index, packet in enumerate(packets):
        frame = loss.degrade(perfect_frame(codec, packet, index=index), rng)
        raw = codec.decode(frame)
        if raw is not None:
            delivered.append(raw)
    return delivered
