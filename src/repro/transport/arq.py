"""ARQ sessions: NACK-driven selective retransmission with backoff.

The broadcast modes (fountain, carousel) need no return path; when one
exists -- the paper's device-to-device scenarios -- selective-repeat ARQ
delivers with far less proactive redundancy.  The model here:

* the sender splits the payload into sequential DATA packets whose
  ``seq`` field is the *byte offset*, so the receiver reassembles and
  detects gaps purely from headers (no out-of-band plan);
* after each forward pass the receiver reports the missing byte ranges
  in a NACK packet over a (possibly lossy) feedback channel;
* a delivered NACK narrows the next round to exactly the missing
  packets; a lost NACK triggers a timeout, the sender retransmits its
  entire outstanding set, and the timeout backs off exponentially;
* :class:`ArqStats` accounts rounds, retransmissions and virtual elapsed
  time so benchmarks can compare ARQ against rateless coding.

The forward channel is abstract (``packets in -> delivered packets
out``), so the same session drives both the synthetic GOB-loss channel
in the benchmarks and the full PHY via
:func:`repro.core.pipeline.run_transport_link`.
"""

from __future__ import annotations

import struct
from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro._util import check_in_range, check_positive, check_positive_int
from repro.obs import Telemetry
from repro.transport.packet import (
    FLAG_FIN,
    Packet,
    PacketFormatError,
    PacketType,
    build_packet,
    parse_packet,
)

_RANGE = struct.Struct(">II")


@dataclass(frozen=True)
class ArqStats:
    """Delivery accounting for one ARQ session.

    ``delivered_bytes`` counts the distinct correct payload bytes the
    receiver holds even when the session ends partial; ``deadline_hit``
    and ``budget_exhausted`` say which degradation bound (if any) ended
    the session early.  The ``n_*`` counters are the receiver's rejection
    tallies (foreign-session, duplicate and out-of-range packets are
    dropped without raising).
    """

    delivered: bool
    rounds: int
    packets_sent: int
    retransmissions: int
    nacks_sent: int
    nacks_delivered: int
    timeouts: int
    elapsed_s: float
    delivered_bytes: int = 0
    deadline_hit: bool = False
    budget_exhausted: bool = False
    n_foreign: int = 0
    n_duplicate: int = 0
    n_out_of_range: int = 0

    def row(self) -> str:
        """One formatted summary line for tables."""
        status = "ok" if self.delivered else "FAIL"
        marks = ""
        if self.deadline_hit:
            marks += " deadline"
        if self.budget_exhausted:
            marks += " budget"
        return (
            f"{status:4s} rounds={self.rounds:2d} sent={self.packets_sent:4d} "
            f"retx={self.retransmissions:4d} nacks={self.nacks_delivered}/"
            f"{self.nacks_sent} timeouts={self.timeouts}{marks}"
        )


def record_arq_telemetry(stats: ArqStats, telemetry: Telemetry) -> None:
    """Record one session's ARQ accounting as ``arq.*`` work counters."""
    metrics = telemetry.metrics
    metrics.counter("arq.rounds").inc(stats.rounds)
    metrics.counter("arq.packets_sent").inc(stats.packets_sent)
    metrics.counter("arq.retransmissions").inc(stats.retransmissions)
    metrics.counter("arq.nacks_sent").inc(stats.nacks_sent)
    metrics.counter("arq.nacks_delivered").inc(stats.nacks_delivered)
    metrics.counter("arq.timeouts").inc(stats.timeouts)
    metrics.counter("arq.rejected_foreign").inc(stats.n_foreign)
    metrics.counter("arq.rejected_duplicate").inc(stats.n_duplicate)
    metrics.counter("arq.rejected_out_of_range").inc(stats.n_out_of_range)


class ArqSender:
    """Packetize a payload into offset-addressed DATA packets."""

    def __init__(self, payload: bytes, chunk_bytes: int, session_id: int = 1) -> None:
        if not payload:
            raise ValueError("payload must not be empty")
        check_positive_int(chunk_bytes, "chunk_bytes")
        self.payload = bytes(payload)
        self.chunk_bytes = chunk_bytes
        self.session_id = int(session_id)
        self.total_len = len(self.payload)

    @property
    def n_packets(self) -> int:
        """Packets covering the payload."""
        return (self.total_len + self.chunk_bytes - 1) // self.chunk_bytes

    def packet(self, index: int) -> bytes:
        """The *index*-th DATA packet (FIN flagged on the last)."""
        if not (0 <= index < self.n_packets):
            raise IndexError(f"packet index {index} outside [0, {self.n_packets})")
        offset = index * self.chunk_bytes
        chunk = self.payload[offset : offset + self.chunk_bytes]
        flags = FLAG_FIN if index == self.n_packets - 1 else 0
        return build_packet(
            PacketType.DATA,
            self.session_id,
            offset,
            chunk,
            self.total_len,
            flags=flags,
        )

    def all_packets(self) -> list[bytes]:
        """Every DATA packet, in order."""
        return [self.packet(i) for i in range(self.n_packets)]

    def packets_for_ranges(
        self, ranges: Iterable[tuple[int, int]]
    ) -> list[bytes]:
        """The packets overlapping the given missing ``(offset, length)`` ranges."""
        wanted: set[int] = set()
        for offset, length in ranges:
            if length <= 0:
                continue
            first = max(0, offset) // self.chunk_bytes
            last = min(self.total_len, offset + length - 1) // self.chunk_bytes
            wanted.update(range(first, min(last, self.n_packets - 1) + 1))
        return [self.packet(i) for i in sorted(wanted)]


class ArqReceiver:
    """Reassemble a DATA stream purely from packet headers.

    No constructor arguments: the session id, total length and chunk
    offsets all come from the packets themselves.
    """

    def __init__(self) -> None:
        self.session_id: int | None = None
        self.total_len: int | None = None
        self._fragments: dict[int, bytes] = {}
        self.n_received = 0
        self.n_rejected = 0
        self.n_foreign = 0
        self.n_duplicate = 0
        self.n_out_of_range = 0

    def receive(self, raw: bytes) -> bool:
        """Ingest one raw packet; returns True if it carried new bytes.

        Never raises on hostile input: malformed buffers, foreign
        sessions, duplicates and packets whose byte range falls outside
        the session's declared length are counted and dropped
        (``n_rejected`` / ``n_foreign`` / ``n_duplicate`` /
        ``n_out_of_range``).
        """
        try:
            packet = parse_packet(raw)
        except PacketFormatError:
            self.n_rejected += 1
            return False
        header = packet.header
        if header.ptype != PacketType.DATA:
            return False
        if self.session_id is None:
            self.session_id = header.session_id
            self.total_len = header.total_len
        elif header.session_id != self.session_id or header.total_len != self.total_len:
            self.n_foreign += 1
            return False
        self.n_received += 1
        assert self.total_len is not None
        if header.seq >= self.total_len or header.seq + len(packet.payload) > self.total_len:
            # A stored out-of-range fragment would silently grow the
            # reassembly buffer past the declared length in payload().
            self.n_out_of_range += 1
            return False
        if header.seq in self._fragments:
            self.n_duplicate += 1
            return False
        self._fragments[header.seq] = packet.payload
        return True

    @property
    def received_bytes(self) -> int:
        """Distinct payload bytes received so far."""
        return sum(len(f) for f in self._fragments.values())

    @property
    def complete(self) -> bool:
        """True when the fragments cover the whole payload."""
        return self.total_len is not None and not self.missing_ranges()

    def missing_ranges(self) -> list[tuple[int, int]]:
        """The ``(offset, length)`` gaps still undelivered."""
        if self.total_len is None:
            return [(0, 0xFFFFFFFF)]
        gaps: list[tuple[int, int]] = []
        cursor = 0
        for offset in sorted(self._fragments):
            if offset > cursor:
                gaps.append((cursor, offset - cursor))
            cursor = max(cursor, offset + len(self._fragments[offset]))
        if cursor < self.total_len:
            gaps.append((cursor, self.total_len - cursor))
        return gaps

    def nack(self, round_index: int = 0) -> bytes | None:
        """A NACK packet listing the missing ranges, or None when done.

        Returns None as well before any DATA packet arrived -- the
        receiver does not yet know the session to complain about.
        """
        if self.session_id is None or self.total_len is None:
            return None
        gaps = self.missing_ranges()
        if not gaps:
            return None
        body = b"".join(_RANGE.pack(offset, length) for offset, length in gaps)
        return build_packet(
            PacketType.NACK, self.session_id, round_index, body, self.total_len
        )

    def ack(self, round_index: int = 0) -> bytes | None:
        """An ACK packet once delivery is complete, else None."""
        if not self.complete:
            return None
        assert self.session_id is not None and self.total_len is not None
        return build_packet(
            PacketType.ACK, self.session_id, round_index, b"", self.total_len
        )

    def payload(self) -> bytes:
        """The reassembled payload (requires :attr:`complete`)."""
        if not self.complete:
            raise ValueError(f"delivery incomplete: missing {self.missing_ranges()}")
        assert self.total_len is not None
        out = bytearray(self.total_len)
        for offset, chunk in self._fragments.items():
            out[offset : offset + len(chunk)] = chunk
        return bytes(out)


def parse_nack(packet: Packet) -> list[tuple[int, int]]:
    """Decode a NACK packet's missing ``(offset, length)`` ranges."""
    if packet.header.ptype != PacketType.NACK:
        raise ValueError(f"not a NACK packet: {packet.header.ptype!r}")
    body = packet.payload
    if len(body) % _RANGE.size:
        raise PacketFormatError(f"NACK body of {len(body)}B is not whole ranges")
    return [
        _RANGE.unpack_from(body, i) for i in range(0, len(body), _RANGE.size)
    ]


class ArqSession:
    """Drive a full ARQ delivery over abstract forward/feedback channels.

    Parameters
    ----------
    payload:
        The bytes to deliver.
    chunk_bytes:
        DATA packet payload size (the frame codec's capacity).
    forward:
        The lossy forward channel: takes the round's packets, returns the
        raw packets that arrived (any order, duplicates allowed).
    session_id:
        Session identifier stamped on every packet.
    feedback_loss:
        Probability that a round's NACK is lost (simulated feedback
        channel).
    timeout_s, backoff:
        Initial sender timeout and its exponential growth factor on every
        lost-feedback round.
    packet_airtime_s:
        Virtual transmission time per packet (one data frame on the PHY),
        accounted into :attr:`ArqStats.elapsed_s`.
    max_rounds:
        Hard bound on forward rounds before giving up.
    retry_budget:
        Degradation bound: maximum retransmitted packets across the whole
        session (None = unlimited).  When the budget runs out the session
        ends and reports whatever bytes arrived (partial delivery).
    deadline_s:
        Degradation bound: virtual-time deadline; no new round starts
        once ``elapsed_s`` reaches it.
    backoff_jitter:
        Fractional jitter on the exponential backoff (a timeout grows by
        ``backoff * (1 +/- jitter)``), decorrelating retry storms.  0
        disables the extra draws, keeping legacy sessions bit-stable.
    rng:
        Generator for feedback-loss and backoff-jitter draws.
    """

    def __init__(
        self,
        payload: bytes,
        chunk_bytes: int,
        forward: Callable[[list[bytes]], list[bytes]],
        session_id: int = 1,
        feedback_loss: float = 0.0,
        timeout_s: float = 0.25,
        backoff: float = 2.0,
        packet_airtime_s: float = 0.1,
        max_rounds: int = 16,
        retry_budget: int | None = None,
        deadline_s: float | None = None,
        backoff_jitter: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        check_in_range(feedback_loss, "feedback_loss", 0.0, 1.0)
        check_positive(timeout_s, "timeout_s")
        check_positive(backoff, "backoff")
        check_positive(packet_airtime_s, "packet_airtime_s")
        check_positive_int(max_rounds, "max_rounds")
        check_in_range(backoff_jitter, "backoff_jitter", 0.0, 1.0)
        if retry_budget is not None and retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {retry_budget}")
        if deadline_s is not None:
            check_positive(deadline_s, "deadline_s")
        self.sender = ArqSender(payload, chunk_bytes, session_id=session_id)
        self.receiver = ArqReceiver()
        self.forward = forward
        self.feedback_loss = feedback_loss
        self.timeout_s = timeout_s
        self.backoff = backoff
        self.packet_airtime_s = packet_airtime_s
        self.max_rounds = max_rounds
        self.retry_budget = retry_budget
        self.deadline_s = deadline_s
        self.backoff_jitter = backoff_jitter
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def run(self) -> tuple[ArqStats, bytes | None]:
        """Execute rounds until delivery, returning (stats, payload|None).

        With a ``retry_budget`` or ``deadline_s`` the session degrades
        instead of looping: it stops at the bound, flags which one fired
        in the stats, and reports the bytes that did arrive
        (:attr:`ArqStats.delivered_bytes`) so callers can act on partial
        delivery.
        """
        to_send = self.sender.all_packets()
        timeout = self.timeout_s
        elapsed = 0.0
        packets_sent = 0
        nacks_sent = 0
        nacks_delivered = 0
        timeouts = 0
        rounds = 0
        delivered = False
        deadline_hit = False
        budget_exhausted = False
        budget = self.retry_budget
        for round_index in range(self.max_rounds):
            if self.deadline_s is not None and elapsed >= self.deadline_s:
                deadline_hit = True
                break
            if round_index > 0 and budget is not None:
                if budget <= 0:
                    budget_exhausted = True
                    break
                to_send = to_send[:budget]
                budget -= len(to_send)
            rounds = round_index + 1
            packets_sent += len(to_send)
            elapsed += len(to_send) * self.packet_airtime_s
            for raw in self.forward(to_send):
                self.receiver.receive(raw)
            if self.receiver.complete:
                delivered = True
                break
            nack = self.receiver.nack(round_index)
            if nack is not None:
                nacks_sent += 1
            if nack is not None and float(self.rng.random()) >= self.feedback_loss:
                nacks_delivered += 1
                ranges = parse_nack(parse_packet(nack))
                to_send = self.sender.packets_for_ranges(ranges)
                timeout = self.timeout_s
            else:
                # Feedback lost (or receiver heard nothing): wait out the
                # timeout, back off, and retransmit the whole batch.
                timeouts += 1
                elapsed += timeout
                timeout *= self.backoff
                if self.backoff_jitter > 0.0:
                    timeout *= 1.0 + self.backoff_jitter * (
                        2.0 * float(self.rng.random()) - 1.0
                    )
                to_send = self.sender.all_packets()
            if not to_send:
                break
        receiver = self.receiver
        stats = ArqStats(
            delivered=delivered,
            rounds=rounds,
            packets_sent=packets_sent,
            retransmissions=max(packets_sent - self.sender.n_packets, 0),
            nacks_sent=nacks_sent,
            nacks_delivered=nacks_delivered,
            timeouts=timeouts,
            elapsed_s=elapsed,
            delivered_bytes=receiver.received_bytes,
            deadline_hit=deadline_hit,
            budget_exhausted=budget_exhausted,
            n_foreign=receiver.n_foreign,
            n_duplicate=receiver.n_duplicate,
            n_out_of_range=receiver.n_out_of_range,
        )
        payload = receiver.payload() if delivered else None
        return stats, payload
