"""Broadcast carousel: an endless fountain stream for mid-stream joiners.

The paper's digital-signage scenario has no return path and no session
setup: a display cycles content all day, and a camera that starts
watching at an arbitrary moment should still collect a payload.  The
carousel wraps :class:`~repro.transport.fountain.LTEncoder` in
self-describing FOUNTAIN packets; because the code is rateless, a
receiver that joins at symbol 10 000 needs exactly as many packets as one
that joined at symbol 0, and :class:`CarouselReceiver` bootstraps every
parameter (k, symbol size, payload length, session seed) from the first
valid header it sees.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro._util import check_positive_int
from repro.transport.fountain import LTDecoder, LTEncoder
from repro.transport.packet import (
    PacketFormatError,
    PacketType,
    build_packet,
    parse_packet,
)


class BroadcastCarousel:
    """Cycle fountain packets for a payload, indefinitely.

    Parameters
    ----------
    payload:
        The bytes being broadcast.
    symbol_bytes:
        Payload bytes per packet (the frame codec's capacity).
    session_id:
        Stamped on every packet; doubles as the fountain seed, so the
        receiver needs nothing out of band.
    c, delta:
        Robust-soliton parameters handed to the LT encoder.
    """

    def __init__(
        self,
        payload: bytes,
        symbol_bytes: int,
        session_id: int = 1,
        c: float = 0.1,
        delta: float = 0.5,
    ) -> None:
        check_positive_int(symbol_bytes, "symbol_bytes")
        self.session_id = int(session_id)
        self.encoder = LTEncoder(
            payload, symbol_bytes, seed=self.session_id, c=c, delta=delta
        )

    @property
    def k(self) -> int:
        """Source blocks in the payload."""
        return self.encoder.k

    @property
    def total_len(self) -> int:
        """Payload length in bytes."""
        return self.encoder.total_len

    def packet(self, index: int) -> bytes:
        """The carousel's *index*-th packet (symbol id = index)."""
        return build_packet(
            PacketType.FOUNTAIN,
            self.session_id,
            index,
            self.encoder.symbol(index),
            self.total_len,
        )

    def packets(self, start: int, count: int) -> list[bytes]:
        """``count`` consecutive packets starting at symbol *start*."""
        return [self.packet(start + i) for i in range(count)]

    def symbol_degrees(self, start: int, count: int) -> list[int]:
        """The LT degrees of ``count`` symbols from *start* (for telemetry)."""
        return [self.encoder.degree(start + i) for i in range(count)]

    def stream(self, start: int = 0) -> Iterator[bytes]:
        """An endless packet iterator from symbol *start* on."""
        index = start
        while True:
            yield self.packet(index)
            index += 1


class CarouselReceiver:
    """Collect a carousel broadcast with zero out-of-band state.

    Feed every raw packet (or candidate byte buffer) to :meth:`receive`;
    malformed buffers and foreign packet types are counted and ignored.
    The LT decoder is constructed lazily from the first valid FOUNTAIN
    header: ``symbol_size`` is the header's length field, ``k`` follows
    from the total length, and the fountain seed is the session id.  A
    new session id resets the receiver (the signage moved on to the next
    payload).
    """

    def __init__(self, c: float = 0.1, delta: float = 0.5) -> None:
        self._c = c
        self._delta = delta
        self.session_id: int | None = None
        self.decoder: LTDecoder | None = None
        self.n_received = 0
        self.n_rejected = 0
        self._join_offset: int | None = None

    def receive(self, raw: bytes) -> bool:
        """Ingest one raw packet; returns True if it advanced the decode."""
        try:
            packet = parse_packet(raw)
        except PacketFormatError:
            self.n_rejected += 1
            return False
        header = packet.header
        if header.ptype != PacketType.FOUNTAIN:
            return False
        if header.length < 1 or header.total_len < 1:
            self.n_rejected += 1
            return False
        if self.session_id is not None and header.session_id != self.session_id:
            self._reset()
        if self.decoder is None:
            self.session_id = header.session_id
            k = (header.total_len + header.length - 1) // header.length
            self.decoder = LTDecoder(
                k,
                header.length,
                header.total_len,
                seed=header.session_id,
                c=self._c,
                delta=self._delta,
            )
        self.n_received += 1
        if self._join_offset is None:
            self._join_offset = int(header.seq)
        return self.decoder.add_symbol(header.seq, packet.payload)

    def _reset(self) -> None:
        self.session_id = None
        self.decoder = None
        self.n_received = 0
        self.n_rejected = 0
        self._join_offset = None

    @property
    def complete(self) -> bool:
        """True when the payload is fully recovered."""
        return self.decoder is not None and self.decoder.complete

    @property
    def join_offset(self) -> int | None:
        """Symbol id of the first packet accepted this session.

        The carousel has no session setup, so where in the cycle a
        receiver tuned in is exactly this first header's ``seq``;
        cohort time-to-join analytics read it straight off the
        receiver instead of reconstructing it from packet logs.
        """
        return self._join_offset

    @property
    def symbols_consumed(self) -> int:
        """Distinct fountain symbols the decoder has ingested.

        Unlike :attr:`n_received` (every accepted packet, including the
        carousel's re-airs of symbols already held), this counts only
        symbols that entered the decode -- the quantity rateless-code
        overhead is measured in.
        """
        return 0 if self.decoder is None else self.decoder.n_received

    def payload(self) -> bytes:
        """The recovered payload (requires :attr:`complete`)."""
        if self.decoder is None:
            raise ValueError("no fountain packets received yet")
        return self.decoder.data()
