"""Transport packets: a compact self-describing header over the PHY.

The physical layer delivers data frames whose GOBs may be individually
erased; :mod:`repro.core.framing` recovers payloads from them only when
sender and receiver share a :class:`~repro.core.framing.FramingPlan` out
of band.  The transport layer removes that requirement: every packet
carries an 18-byte header that fully describes the session, so a receiver
can bootstrap from the packets alone (including one that joins an ongoing
broadcast mid-stream).

Header layout (big-endian, 18 bytes)::

    offset  size  field
    0       2     magic  b"IF"
    2       1     version (high nibble) | packet type (low nibble)
    3       1     flags   (bit 0: FIN -- last packet of a DATA stream)
    4       2     session id
    6       4     seq     (byte offset for DATA, symbol id for FOUNTAIN,
                           feedback round for NACK)
    10      4     total length of the payload object in bytes
    14      2     length of this packet's payload in bytes
    16      2     CRC-16/CCITT-FALSE over bytes 0..15

The header CRC lets a receiver reject frames whose inner RS decode
miscorrected; the payload is separately protected by a trailing CRC-16,
so a packet on the wire is ``header || payload || crc16(payload)``.

:class:`FramePacketCodec` maps whole packets onto single data frames: the
packet bytes are Reed-Solomon coded and interleaved to fill the frame's
bit budget, so a handful of erased GOBs is corrected in place and a burst
beyond the RS radius costs exactly one packet -- turning the PHY into the
packet-erasure channel the fountain and ARQ layers are built for.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro._util import check_positive_int
from repro.core.config import InFrameConfig
from repro.core.decoder import DecodedDataFrame
from repro.core.framing import decoded_frame_bits, slice_bits_to_frames
from repro.core.parity import data_bits_to_grid
from repro.ecc.crc import crc16_append, crc16_bytes, crc16_verify
from repro.ecc.interleaver import BlockInterleaver
from repro.ecc.reed_solomon import ReedSolomonCodec, RSDecodingError

MAGIC = b"IF"
VERSION = 1

#: Fixed header size in bytes.
HEADER_BYTES = 18
#: Header plus the trailing payload CRC-16.
PACKET_OVERHEAD = HEADER_BYTES + 2

#: Last packet of a sequential DATA stream.
FLAG_FIN = 0x01

_HEADER = struct.Struct(">2sBBHIIH")


class PacketType(IntEnum):
    """Packet types carried in the header's low type nibble."""

    DATA = 0x1  #: sequential payload chunk; ``seq`` is the byte offset
    FOUNTAIN = 0x2  #: LT-coded symbol; ``seq`` is the encoding-symbol id
    NACK = 0x3  #: feedback listing missing byte ranges
    ACK = 0x4  #: feedback confirming complete delivery


class PacketFormatError(ValueError):
    """Raised when a byte buffer is not a well-formed transport packet."""


@dataclass(frozen=True)
class PacketHeader:
    """Parsed header fields (see the module docstring for the layout)."""

    ptype: PacketType
    session_id: int
    seq: int
    total_len: int
    length: int
    flags: int = 0
    version: int = VERSION

    def to_bytes(self) -> bytes:
        """Serialize, appending the header CRC."""
        if not (0 <= self.session_id <= 0xFFFF):
            raise ValueError(f"session_id out of range: {self.session_id}")
        if not (0 <= self.seq <= 0xFFFFFFFF):
            raise ValueError(f"seq out of range: {self.seq}")
        if not (0 <= self.total_len <= 0xFFFFFFFF):
            raise ValueError(f"total_len out of range: {self.total_len}")
        if not (0 <= self.length <= 0xFFFF):
            raise ValueError(f"length out of range: {self.length}")
        body = _HEADER.pack(
            MAGIC,
            (self.version << 4) | int(self.ptype),
            self.flags,
            self.session_id,
            self.seq,
            self.total_len,
            self.length,
        )
        return body + crc16_bytes(body)


@dataclass(frozen=True)
class Packet:
    """One parsed transport packet."""

    header: PacketHeader
    payload: bytes

    def to_bytes(self) -> bytes:
        """The on-the-wire form: ``header || payload || crc16(payload)``."""
        return self.header.to_bytes() + crc16_append(self.payload)

    @property
    def wire_bytes(self) -> int:
        """Total serialized size in bytes."""
        return PACKET_OVERHEAD + len(self.payload)


def build_packet(
    ptype: PacketType,
    session_id: int,
    seq: int,
    payload: bytes,
    total_len: int,
    flags: int = 0,
) -> bytes:
    """Serialize one packet; the convenience inverse of :func:`parse_packet`."""
    header = PacketHeader(
        ptype=PacketType(ptype),
        session_id=session_id,
        seq=seq,
        total_len=total_len,
        length=len(payload),
        flags=flags,
    )
    return Packet(header, bytes(payload)).to_bytes()


def parse_header(buffer: bytes) -> PacketHeader:
    """Parse and verify the 18-byte header at the start of *buffer*."""
    buf = bytes(buffer)
    if len(buf) < HEADER_BYTES:
        raise PacketFormatError(f"buffer too short for header: {len(buf)} bytes")
    body, crc = buf[: HEADER_BYTES - 2], buf[HEADER_BYTES - 2 : HEADER_BYTES]
    if crc16_bytes(body) != crc:
        raise PacketFormatError("header CRC mismatch")
    magic, vt, flags, session_id, seq, total_len, length = _HEADER.unpack(body)
    if magic != MAGIC:
        raise PacketFormatError(f"bad magic {magic!r}")
    version, type_code = vt >> 4, vt & 0x0F
    if version != VERSION:
        raise PacketFormatError(f"unsupported version {version}")
    try:
        ptype = PacketType(type_code)
    except ValueError as exc:
        raise PacketFormatError(f"unknown packet type {type_code}") from exc
    return PacketHeader(
        ptype=ptype,
        session_id=session_id,
        seq=seq,
        total_len=total_len,
        length=length,
        flags=flags,
        version=version,
    )


def parse_packet(buffer: bytes) -> Packet:
    """Parse the packet at the start of *buffer* (trailing bytes ignored).

    Trailing bytes beyond the header's declared length are permitted --
    a packet recovered from a data frame arrives padded to the frame's
    byte capacity.

    Raises
    ------
    PacketFormatError:
        On truncation, bad magic, or a header/payload CRC mismatch.
    """
    buf = bytes(buffer)
    header = parse_header(buf)
    end = HEADER_BYTES + header.length + 2
    if len(buf) < end:
        raise PacketFormatError(
            f"buffer truncated: need {end} bytes, have {len(buf)}"
        )
    body = buf[HEADER_BYTES:end]
    if not crc16_verify(body):
        raise PacketFormatError("payload CRC mismatch")
    return Packet(header, body[:-2])


def scan_packets(stream: bytes) -> list[Packet]:
    """Extract every well-formed packet from a byte stream.

    Resynchronises on the magic after corruption, so a damaged region
    costs only the packets it covers.
    """
    buf = bytes(stream)
    packets: list[Packet] = []
    offset = 0
    while offset + HEADER_BYTES <= len(buf):
        index = buf.find(MAGIC, offset)
        if index < 0:
            break
        try:
            packet = parse_packet(buf[index:])
        except PacketFormatError:
            offset = index + 1
            continue
        packets.append(packet)
        offset = index + packet.wire_bytes
    return packets


class FramePacketCodec:
    """Map whole transport packets onto single data frames.

    Each packet is padded to the frame's byte capacity, split into
    ``n_codewords`` RS(n, k) messages, encoded, byte-interleaved across
    the codewords and laid on the Block grid.  On receive, unavailable
    GOBs become byte erasures; if every codeword decodes, the recovered
    bytes are returned for packet parsing, otherwise the frame is a
    packet erasure.

    Parameters
    ----------
    config:
        The InFrame parameters (fix the per-frame bit budget).
    rs_n, rs_k:
        The inner Reed-Solomon code; ``bits_per_frame // 8`` must fit at
        least one codeword, and ``n_codewords * rs_k`` must exceed
        :data:`PACKET_OVERHEAD` so a packet has room for payload.
    """

    def __init__(self, config: InFrameConfig, rs_n: int = 60, rs_k: int = 40) -> None:
        check_positive_int(rs_n, "rs_n")
        check_positive_int(rs_k, "rs_k")
        self.config = config
        self.rs_n = rs_n
        self.rs_k = rs_k
        frame_bytes = config.bits_per_frame // 8
        self.n_codewords = frame_bytes // rs_n
        if self.n_codewords < 1:
            raise ValueError(
                f"frame capacity {frame_bytes}B cannot hold one RS({rs_n},{rs_k}) "
                f"codeword; use a smaller code or a larger Block grid"
            )
        self.frame_payload_bytes = self.n_codewords * rs_k
        self.max_payload_bytes = self.frame_payload_bytes - PACKET_OVERHEAD
        if self.max_payload_bytes < 1:
            raise ValueError(
                f"frame payload {self.frame_payload_bytes}B leaves no room after "
                f"the {PACKET_OVERHEAD}B packet overhead"
            )
        self._codec = ReedSolomonCodec(rs_n, rs_k)
        self._interleaver = BlockInterleaver(self.n_codewords, rs_n)

    def encode(self, packet_bytes: bytes) -> np.ndarray:
        """One packet -> a Block bit grid (with GOB coding) for one frame."""
        buf = bytes(packet_bytes)
        if len(buf) > self.frame_payload_bytes:
            raise ValueError(
                f"packet of {len(buf)}B exceeds frame payload "
                f"{self.frame_payload_bytes}B"
            )
        buf = buf.ljust(self.frame_payload_bytes, b"\x00")
        codewords = b"".join(
            self._codec.encode(buf[i : i + self.rs_k])
            for i in range(0, len(buf), self.rs_k)
        )
        message = self._interleaver.interleave(codewords)
        bits = np.unpackbits(np.frombuffer(message, dtype=np.uint8))
        frame_bits = slice_bits_to_frames(bits, self.config)
        if frame_bits.shape[0] != 1:
            raise ValueError("internal error: packet bits overflow one frame")
        return data_bits_to_grid(frame_bits[0], self.config)

    def decode(self, decoded: DecodedDataFrame) -> bytes | None:
        """One decoded data frame -> the packet bytes it carried, or None.

        Returns ``None`` when any inner codeword is beyond the erasure
        radius -- the frame then counts as a lost packet.  The returned
        buffer still carries the frame padding; :func:`parse_packet`
        ignores it.
        """
        bits, known = decoded_frame_bits(decoded, self.config)
        return self.decode_bits(bits, known)

    def decode_bits(self, bits: np.ndarray, known: np.ndarray) -> bytes | None:
        """Decode from accumulated frame bits and their known-mask.

        Split out from :meth:`decode` so a receiver can merge several
        observations of the same packet slot (the display airs a batch
        cyclically) before spending the RS budget -- the same
        first-confident accumulation :class:`~repro.core.framing.PayloadAssembler`
        uses, but per packet.
        """
        used = self.n_codewords * self.rs_n * 8
        message = np.packbits(bits[:used].astype(np.uint8)).tobytes()
        byte_known = known[:used].reshape(-1, 8).all(axis=1)
        erased = [int(i) for i in np.flatnonzero(~byte_known)]
        stream = self._interleaver.deinterleave(message)
        erased_original = self._interleaver.deinterleave_positions(erased)
        out = bytearray()
        for cw in range(self.n_codewords):
            start = cw * self.rs_n
            word = stream[start : start + self.rs_n]
            erasures = [
                p - start for p in erased_original if start <= p < start + self.rs_n
            ]
            try:
                decoded_word, _ = self._codec.decode(word, erasure_positions=erasures)
            except RSDecodingError:
                return None
            out.extend(decoded_word)
        return bytes(out)


class PacketSlotAccumulator:
    """Merge repeated observations of packet slots before RS decoding.

    The display airs a packet batch cyclically for the clip's duration,
    so most slots are observed more than once per pass; each observation
    misses a different set of GOBs.  Accumulating known bits per slot
    (first confident reading wins, as in
    :class:`~repro.core.framing.PayloadAssembler`) shrinks the residual
    erasure set geometrically before the RS budget is spent.
    """

    def __init__(self, codec: FramePacketCodec, n_slots: int) -> None:
        check_positive_int(n_slots, "n_slots")
        self.codec = codec
        self.n_slots = n_slots
        per_frame = codec.config.bits_per_frame
        self._bits = np.zeros((n_slots, per_frame), dtype=bool)
        self._known = np.zeros((n_slots, per_frame), dtype=bool)
        self._observations = np.zeros(n_slots, dtype=np.int64)

    def add_frame(self, decoded: DecodedDataFrame) -> None:
        """Merge one decoded data frame into its slot (index mod n_slots)."""
        slot = decoded.index % self.n_slots
        bits, known = decoded_frame_bits(decoded, self.codec.config)
        fresh = known & ~self._known[slot]
        self._bits[slot][fresh] = bits[fresh]
        self._known[slot] |= known
        self._observations[slot] += 1

    def observations(self, slot: int) -> int:
        """How many decoded frames have been merged into *slot*."""
        if not (0 <= slot < self.n_slots):
            raise IndexError(f"slot {slot} outside [0, {self.n_slots})")
        return int(self._observations[slot])

    def decode_slot(self, slot: int) -> bytes | None:
        """RS-decode one slot from the evidence merged so far.

        Returns ``None`` for unobserved slots and for slots still beyond
        the erasure radius.  A carousel receiver calls this after each
        merged frame to deliver packets the moment they become
        decodable, instead of waiting for the end-of-round
        :meth:`decode_packets` sweep.
        """
        if not self.observations(slot):
            return None
        return self.codec.decode_bits(self._bits[slot], self._known[slot])

    def decode_packets(self) -> list[bytes]:
        """RS-decode every observed slot; undecodable slots are skipped."""
        raws: list[bytes] = []
        for slot in range(self.n_slots):
            raw = self.decode_slot(slot)
            if raw is not None:
                raws.append(raw)
        return raws


class PacketSchedule:
    """A :class:`~repro.core.multiplexer.DataFrameSchedule` serving packets.

    Data frame *i* carries ``packets[i % len(packets)]``; cycling means a
    stream longer than one pass retransmits the batch, and the transport
    receivers deduplicate by header.
    """

    def __init__(
        self,
        config: InFrameConfig,
        codec: FramePacketCodec,
        packets: list[bytes],
        repeat: bool = True,
    ) -> None:
        if not packets:
            raise ValueError("need at least one packet")
        self.config = config
        self.codec = codec
        self.repeat = repeat
        self._grids = [codec.encode(p) for p in packets]

    @property
    def n_packets(self) -> int:
        """Packets in one pass of the batch."""
        return len(self._grids)

    def bits(self, index: int) -> np.ndarray:
        """Grid for data frame *index* (cycling when ``repeat``)."""
        if index < 0:
            raise IndexError(f"data frame index must be >= 0, got {index}")
        if index >= self.n_packets and not self.repeat:
            raise IndexError(
                f"data frame {index} beyond single-shot batch ({self.n_packets})"
            )
        return self._grids[index % self.n_packets]
