"""Rateless LT (fountain) coding for the packet-erasure channel.

The PHY erases *frames* in bursts (rolling-shutter bands, occlusions,
textured content), so which packets of a batch survive is unpredictable.
A fountain code makes that irrelevant: the sender emits an endless stream
of encoding symbols -- each the XOR of a pseudo-random subset of the
``k`` source blocks -- and *any* ``k(1+eps)`` received symbols recover
the payload with high probability (Luby, FOCS 2002).

Both ends derive a symbol's neighbour set deterministically from
``(session seed, symbol id)``, so the id in a packet header is all the
receiver needs.  The code is *systematic*: symbols ``0..k-1`` are the
source blocks verbatim (a lossless first pass costs zero overhead), and
every later symbol draws its degree from the robust-soliton
distribution, which keeps the peeling decoder's ripple alive: a spike at
``d = 1`` seeds it, the ``1/d(d-1)`` ideal-soliton body sustains it, and
the spike at ``d = k/R`` ensures full coverage of the source blocks.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_in_range, check_positive_int

#: Domain-separation constant mixed into every symbol RNG seed.
_SEED_DOMAIN = 0x1F5E


def robust_soliton_distribution(
    k: int, c: float = 0.1, delta: float = 0.5
) -> np.ndarray:
    """The robust-soliton degree probabilities for ``k`` source blocks.

    Returns a length-``k`` vector where entry ``d-1`` is the probability
    of degree ``d``.

    Parameters
    ----------
    k:
        Number of source blocks.
    c:
        Ripple-size tuning constant (larger = more low degrees = more
        overhead but a more robust ripple).
    delta:
        Target decoder failure probability bound.
    """
    check_positive_int(k, "k")
    check_in_range(c, "c", 1e-6, 10.0)
    check_in_range(delta, "delta", 1e-9, 1.0)
    if k == 1:
        return np.ones(1)
    degrees = np.arange(1, k + 1, dtype=np.float64)
    rho = np.zeros(k)
    rho[0] = 1.0 / k
    rho[1:] = 1.0 / (degrees[1:] * (degrees[1:] - 1.0))
    ripple = c * np.log(k / delta) * np.sqrt(k)
    spike = max(1, min(k, int(round(k / ripple))))
    tau = np.zeros(k)
    small = degrees < spike
    tau[small] = ripple / (degrees[small] * k)
    tau[spike - 1] = ripple * np.log(ripple / delta) / k if ripple > delta else 0.0
    tau = np.maximum(tau, 0.0)
    dist = rho + tau
    return dist / dist.sum()


def symbol_neighbors(
    k: int, seed: int, seq: int, distribution: np.ndarray
) -> np.ndarray:
    """The source-block indices XORed into symbol *seq* (sorted, unique).

    Deterministic in ``(k, seed, seq)``: the encoder and the peeling
    decoder call this with the same arguments and agree exactly.  The
    first ``k`` symbols are systematic (symbol ``i`` is source block
    ``i``); later symbols draw from *distribution*.
    """
    if seq < 0:
        raise ValueError(f"symbol id must be >= 0, got {seq}")
    if seq < k:
        return np.array([seq])
    rng = np.random.default_rng((_SEED_DOMAIN, seed, seq))
    degree = 1 + int(rng.choice(distribution.size, p=distribution))
    return np.sort(rng.choice(k, size=degree, replace=False))


def symbol_degree(k: int, seed: int, seq: int, distribution: np.ndarray) -> int:
    """The number of source blocks XORed into symbol *seq*.

    Same derivation as :func:`symbol_neighbors` (systematic symbols have
    degree 1); used by the telemetry layer to histogram the realized
    degree distribution of a session's sent symbols.
    """
    return int(symbol_neighbors(k, seed, seq, distribution).size)


class LTEncoder:
    """Generate LT encoding symbols from a byte payload.

    Parameters
    ----------
    data:
        The payload; padded to a whole number of blocks internally.
    symbol_size:
        Bytes per encoding symbol (= per source block).
    seed:
        Session seed shared with the decoder (typically the session id,
        which travels in every packet header).
    c, delta:
        Robust-soliton parameters.
    """

    def __init__(
        self,
        data: bytes,
        symbol_size: int,
        seed: int = 0,
        c: float = 0.1,
        delta: float = 0.5,
    ) -> None:
        if not data:
            raise ValueError("data must not be empty")
        check_positive_int(symbol_size, "symbol_size")
        self.total_len = len(data)
        self.symbol_size = symbol_size
        self.seed = int(seed)
        self.k = (self.total_len + symbol_size - 1) // symbol_size
        padded = bytes(data).ljust(self.k * symbol_size, b"\x00")
        self._blocks = np.frombuffer(padded, dtype=np.uint8).reshape(
            self.k, symbol_size
        )
        self._distribution = robust_soliton_distribution(self.k, c=c, delta=delta)

    def neighbors(self, seq: int) -> np.ndarray:
        """The source blocks combined into symbol *seq*."""
        return symbol_neighbors(self.k, self.seed, seq, self._distribution)

    def degree(self, seq: int) -> int:
        """How many source blocks symbol *seq* combines."""
        return symbol_degree(self.k, self.seed, seq, self._distribution)

    def symbol(self, seq: int) -> bytes:
        """Encoding symbol *seq*: the XOR of its neighbour blocks."""
        picked = self._blocks[self.neighbors(seq)]
        return np.bitwise_xor.reduce(picked, axis=0).tobytes()


class LTDecoder:
    """Peeling (belief-propagation) decoder for :class:`LTEncoder` symbols.

    Feed symbols in any order via :meth:`add_symbol`; degree-1 symbols
    release source blocks, which are XORed out of every pending symbol,
    possibly cascading further releases (the ripple).  When peeling
    stalls with enough equations banked, the decoder falls back to
    GF(2) Gaussian elimination over the pending symbols (inactivation
    decoding, as in RaptorQ), which pushes the overhead toward the
    information-theoretic minimum for small ``k``.  Everything needed to
    construct one travels in packet headers: ``k`` and ``total_len``
    from the length fields, ``seed`` from the session id.
    """

    def __init__(
        self,
        k: int,
        symbol_size: int,
        total_len: int,
        seed: int = 0,
        c: float = 0.1,
        delta: float = 0.5,
    ) -> None:
        check_positive_int(k, "k")
        check_positive_int(symbol_size, "symbol_size")
        check_positive_int(total_len, "total_len")
        if total_len > k * symbol_size:
            raise ValueError(
                f"total_len {total_len} exceeds k*symbol_size {k * symbol_size}"
            )
        self.k = k
        self.symbol_size = symbol_size
        self.total_len = total_len
        self.seed = int(seed)
        self._distribution = robust_soliton_distribution(k, c=c, delta=delta)
        self._blocks = np.zeros((k, symbol_size), dtype=np.uint8)
        self._known = np.zeros(k, dtype=bool)
        self._pending: dict[int, tuple[set[int], np.ndarray]] = {}
        self._by_block: dict[int, set[int]] = {}
        self._seen: set[int] = set()
        self._solve_watermark = 0
        self.n_received = 0
        self.n_redundant = 0

    # ------------------------------------------------------------------
    # Symbol intake
    # ------------------------------------------------------------------
    def add_symbol(self, seq: int, payload: bytes) -> bool:
        """Ingest symbol *seq*; returns True if it advanced the decode."""
        buf = bytes(payload)
        if len(buf) != self.symbol_size:
            raise ValueError(
                f"symbol must be {self.symbol_size} bytes, got {len(buf)}"
            )
        if seq in self._seen:
            self.n_redundant += 1
            return False
        self._seen.add(seq)
        self.n_received += 1
        value = np.frombuffer(buf, dtype=np.uint8).copy()
        neighbors = set(
            int(i) for i in symbol_neighbors(self.k, self.seed, seq, self._distribution)
        )
        # Reduce by already-recovered blocks.
        for block in [b for b in neighbors if self._known[b]]:
            value ^= self._blocks[block]
            neighbors.discard(block)
        if not neighbors:
            self.n_redundant += 1
            return False
        if len(neighbors) == 1:
            self._release(neighbors.pop(), value)
            return True
        self._pending[seq] = (neighbors, value)
        for block in neighbors:
            self._by_block.setdefault(block, set()).add(seq)
        if not self.complete:
            self._try_solve()
        return True

    def _release(self, block: int, value: np.ndarray) -> None:
        """Recover one source block and peel it out of pending symbols."""
        ripple = [(block, value)]
        while ripple:
            block, value = ripple.pop()
            if self._known[block]:
                continue
            self._blocks[block] = value
            self._known[block] = True
            for seq in sorted(self._by_block.pop(block, ())):
                entry = self._pending.get(seq)
                if entry is None:
                    continue
                neighbors, sym = entry
                sym ^= value
                neighbors.discard(block)
                if len(neighbors) == 1:
                    del self._pending[seq]
                    last = next(iter(neighbors))
                    self._by_block.get(last, set()).discard(seq)
                    ripple.append((last, sym))
                elif not neighbors:
                    del self._pending[seq]

    def _try_solve(self) -> None:
        """Inactivation fallback: GF(2) elimination over pending symbols.

        Runs only when the banked equations could possibly determine all
        remaining blocks, and only once per new batch of pending symbols
        (the watermark), so the peeling fast path stays dominant.
        """
        unknown = [int(b) for b in np.flatnonzero(~self._known)]
        if not unknown or len(self._pending) < len(unknown):
            return
        if len(self._pending) <= self._solve_watermark:
            return
        self._solve_watermark = len(self._pending)
        column = {block: j for j, block in enumerate(unknown)}
        rows = []
        for neighbors, value in self._pending.values():
            indicator = np.zeros(len(unknown), dtype=bool)
            for block in neighbors:
                indicator[column[block]] = True
            rows.append((indicator, value.copy()))
        # Forward elimination (columns before *col* are already clear in
        # every remaining row by induction).
        pivots: list[tuple[int, np.ndarray, np.ndarray]] = []
        for col in range(len(unknown)):
            pivot = next((r for r in rows if r[0][col]), None)
            if pivot is None:
                return  # rank-deficient; wait for more symbols
            rows = [r for r in rows if r is not pivot]
            for indicator, value in rows:
                if indicator[col]:
                    indicator ^= pivot[0]
                    value ^= pivot[1]
            pivots.append((col, pivot[0], pivot[1]))
        # Back substitution, last pivot first.
        solved: dict[int, np.ndarray] = {}
        for col, indicator, value in reversed(pivots):
            resolved = value.copy()
            for other in np.flatnonzero(indicator):
                if other != col:
                    resolved ^= solved[int(other)]
            solved[col] = resolved
        for col, value in solved.items():
            self._release(unknown[col], value)
        self._solve_watermark = 0

    # ------------------------------------------------------------------
    # Status and output
    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """True when every source block is recovered."""
        return bool(self._known.all())

    @property
    def n_decoded(self) -> int:
        """Source blocks recovered so far."""
        return int(self._known.sum())

    @property
    def n_missing(self) -> int:
        """Source blocks still unknown."""
        return self.k - self.n_decoded

    def data(self) -> bytes:
        """The reassembled payload.

        Raises
        ------
        ValueError:
            If the decode is not complete yet.
        """
        if not self.complete:
            raise ValueError(
                f"decode incomplete: {self.n_missing}/{self.k} blocks missing"
            )
        return self._blocks.tobytes()[: self.total_len]
