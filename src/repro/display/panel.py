"""The display panel model.

Models the pieces of an LCD that shape both InFrame channels:

* a refresh clock (frames are latched at ``1 / refresh_hz`` intervals);
* the gamma transfer from pixel values to luminance (:class:`GammaCurve`);
* a global brightness (backlight) scale;
* a first-order liquid-crystal response -- a pixel does not jump to its new
  luminance instantaneously but relaxes exponentially with a time constant
  of a few milliseconds, which softens the 60 Hz complementary carrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import check_fraction, check_in_range, check_positive, check_positive_int
from repro.display.gamma import GammaCurve


@dataclass(frozen=True)
class DisplayPanel:
    """Static description of a display panel.

    The defaults describe the paper's Eizo FG2421 setup: 1920x1080 at
    120 Hz with brightness at 100%.

    Attributes
    ----------
    width, height:
        Panel resolution in pixels.
    refresh_hz:
        Refresh rate in frames per second.
    brightness:
        Backlight scale in [0, 1]; 1.0 is the paper's setting.
    response_time_s:
        Liquid-crystal time constant in seconds (0 disables the response
        model).  The FG2421's fast-VA class specifies ~1 ms gray-to-gray; specs like that are typical for the panel
        class used in the paper.
    gamma_curve:
        The pixel-value to luminance transfer.
    diagonal_inches:
        Physical diagonal, used for viewing-distance geometry.
    """

    width: int = 1920
    height: int = 1080
    refresh_hz: float = 120.0
    brightness: float = 1.0
    response_time_s: float = 0.001
    gamma_curve: GammaCurve = field(default_factory=GammaCurve)
    diagonal_inches: float = 24.0

    def __post_init__(self) -> None:
        check_positive_int(self.width, "width")
        check_positive_int(self.height, "height")
        check_positive(self.refresh_hz, "refresh_hz")
        check_fraction(self.brightness, "brightness")
        check_in_range(self.response_time_s, "response_time_s", 0.0, 0.1)
        check_positive(self.diagonal_inches, "diagonal_inches")

    @property
    def frame_interval_s(self) -> float:
        """Seconds between successive refreshes."""
        return 1.0 / self.refresh_hz

    @property
    def pixel_pitch_mm(self) -> float:
        """Physical size of one pixel in millimetres."""
        diagonal_mm = self.diagonal_inches * 25.4
        diagonal_px = float(np.hypot(self.width, self.height))
        return diagonal_mm / diagonal_px

    def typical_viewing_distance_m(self) -> float:
        """The paper's "typical viewing distance": 1.2x the screen diagonal."""
        return 1.2 * self.diagonal_inches * 25.4 / 1000.0

    def emitted_luminance(self, frame: np.ndarray) -> np.ndarray:
        """Luminance field (cd/m^2) for a latched pixel-value *frame*.

        Accepts grayscale ``(h, w)`` or RGB ``(h, w, 3)`` frames; colour
        frames are converted channel-wise through the gamma curve and
        combined with Rec.709 luma weights, which is what a luminance-
        sensing receiver (and the flicker-fusion eye model) responds to.
        """
        frame = np.asarray(frame)
        if frame.ndim == 3:
            weights = np.array([0.2126, 0.7152, 0.0722], dtype=np.float32)
            channels = self.gamma_curve.to_luminance(frame)
            lum = (channels * weights).sum(axis=2)
            return (lum * np.float32(self.brightness)).astype(np.float32)
        return (self.gamma_curve.to_luminance(frame) * np.float32(self.brightness)).astype(
            np.float32
        )

    def scaled(self, scale: float) -> "DisplayPanel":
        """A panel with the same optics but spatial resolution scaled by *scale*.

        The experiment harness uses this to run the full pipeline at reduced
        resolution: all per-pixel physics are resolution-independent, so a
        scaled run preserves the channel behaviour at a fraction of the cost.
        """
        check_positive(scale, "scale")
        return DisplayPanel(
            width=max(1, int(round(self.width * scale))),
            height=max(1, int(round(self.height * scale))),
            refresh_hz=self.refresh_hz,
            brightness=self.brightness,
            response_time_s=self.response_time_s,
            gamma_curve=self.gamma_curve,
            diagonal_inches=self.diagonal_inches,
        )
