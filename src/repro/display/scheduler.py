"""Display timeline: frames -> emitted light field over continuous time.

:class:`DisplayTimeline` is the boundary between the discrete world of the
encoder (a sequence of pixel-value frames) and the continuous world of the
receivers (a camera integrating light over exposure windows; an eye
low-pass filtering luminance over time).  It models:

* frame latching on the panel's refresh clock;
* the first-order liquid-crystal response of the panel;
* exact integration of luminance over arbitrary time windows.

Frames are produced lazily from a :class:`FrameSource`, so a multi-second
120 Hz stream never has to exist in memory at once.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

import numpy as np

from repro.display.panel import DisplayPanel


class FrameSource(Protocol):
    """Anything that can serve pixel-value frames by index."""

    @property
    def n_frames(self) -> int:
        """Total number of frames available."""
        ...

    def frame(self, index: int) -> np.ndarray:
        """Return frame *index* as a float32 array of pixel values."""
        ...


class DisplayTimeline:
    """The light field a panel emits while playing a frame source.

    Parameters
    ----------
    panel:
        The :class:`DisplayPanel` doing the playback.
    source:
        The frame source being played, one frame per refresh.
    cache_frames:
        Bound on the per-frame caches (emitted-luminance fields and
        per-refresh averages), each holding at most this many frames in
        FIFO order -- so peak cache memory is ``2 * cache_frames`` full
        luminance fields regardless of stream length.  The default of 24
        covers two data-frame cycles at the paper's ``tau = 12``; ``0``
        disables caching (every access recomputes, for memory-starved
        sweeps over large panels).

    Notes
    -----
    With a liquid-crystal time constant ``tau``, the luminance during frame
    ``i`` (latched at ``t_i``) is ``L_i + (s_{i-1} - L_i) * exp(-(t - t_i)/tau)``
    where ``s_{i-1}`` is the pixel state at the end of the previous frame.
    States are advanced lazily and monotonically; jumping far backwards
    re-warms the recursion from a few frames earlier, which is exact to
    within ``exp(-k * T / tau)`` (~1e-15 for the defaults).
    """

    _WARMUP_FRAMES = 8
    _DEFAULT_CACHE_FRAMES = 24

    def __init__(
        self,
        panel: DisplayPanel,
        source: FrameSource,
        cache_frames: int = _DEFAULT_CACHE_FRAMES,
    ) -> None:
        if source.n_frames < 1:
            raise ValueError("frame source must contain at least one frame")
        if cache_frames < 0:
            raise ValueError(f"cache_frames must be >= 0, got {cache_frames}")
        self.panel = panel
        self.source = source
        self.cache_frames = int(cache_frames)
        self._lum_cache: dict[int, np.ndarray] = {}
        self._lum_cache_order: list[int] = []
        self._avg_cache: dict[int, np.ndarray] = {}
        self._avg_cache_order: list[int] = []
        self._state_index = -1
        self._state: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        """Number of frames in the underlying source."""
        return self.source.n_frames

    @property
    def duration_s(self) -> float:
        """Total playback duration in seconds."""
        return self.n_frames * self.panel.frame_interval_s

    def frame_index_at(self, t: float) -> int:
        """Index of the frame latched at time *t* (clamped to the stream)."""
        index = int(np.floor(t * self.panel.refresh_hz))
        return min(max(index, 0), self.n_frames - 1)

    def latch_time(self, index: int) -> float:
        """Time at which frame *index* is latched."""
        return index * self.panel.frame_interval_s

    # ------------------------------------------------------------------
    # Light field evaluation
    # ------------------------------------------------------------------
    def luminance_at(self, t: float, rect: tuple[int, int, int, int] | None = None) -> np.ndarray:
        """Instantaneous luminance field at time *t* (cd/m^2).

        Parameters
        ----------
        t:
            Time in seconds from playback start; clamped into the stream.
        rect:
            Optional ``(row0, row1, col0, col1)`` crop evaluated instead of
            the full field (the full-field state is still tracked so the
            liquid-crystal recursion stays exact).
        """
        index = self.frame_index_at(t)
        target = self._frame_luminance(index)
        if self.panel.response_time_s <= 0.0:
            return self._crop(target, rect)
        previous_state = self._state_before(index)
        elapsed = max(t - self.latch_time(index), 0.0)
        decay = np.float32(np.exp(-elapsed / self.panel.response_time_s))
        field = target + (previous_state - target) * decay
        return self._crop(field, rect)

    def integrate(
        self,
        t0: float,
        t1: float,
        rect: tuple[int, int, int, int] | None = None,
    ) -> np.ndarray:
        """Mean luminance over the window [t0, t1] (cd/m^2).

        The window is split at frame boundaries and each piece is integrated
        analytically (exponential relaxation toward the latched frame).
        """
        if not (t1 > t0):
            raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
        interval = self.panel.frame_interval_s
        tau = self.panel.response_time_s
        total: np.ndarray | None = None
        first_index = self.frame_index_at(t0)
        last_index = self.frame_index_at(t1 - 1e-12)
        for index in range(first_index, last_index + 1):
            seg_start = max(t0, self.latch_time(index)) if index > first_index else t0
            seg_end = min(t1, self.latch_time(index + 1))
            if index == self.n_frames - 1:
                seg_end = t1  # stream holds its last frame
            seg_len = seg_end - seg_start
            if seg_len <= 0:
                continue
            target = self._crop(self._frame_luminance(index), rect)
            piece = target * np.float32(seg_len)
            if tau > 0.0:
                previous_state = self._crop(self._state_before(index), rect)
                a = max(seg_start - self.latch_time(index), 0.0)
                b = max(seg_end - self.latch_time(index), 0.0)
                weight = np.float32(tau * (np.exp(-a / tau) - np.exp(-b / tau)))
                piece = piece + (previous_state - target) * weight
            total = piece if total is None else total + piece
        assert total is not None  # guaranteed: t1 > t0 yields >= 1 segment
        return (total / np.float32(t1 - t0)).astype(np.float32)

    def frame_average_luminance(self, index: int) -> np.ndarray:
        """Mean luminance field over the full refresh interval of frame *index*.

        This folds the liquid-crystal response into a single per-frame
        field; the camera pipeline blends these with rolling-shutter row
        weights instead of re-integrating per row.
        """
        if not (0 <= index < self.n_frames):
            raise IndexError(f"frame index {index} outside [0, {self.n_frames})")
        cached = self._avg_cache.get(index)
        if cached is not None:
            return cached
        start = self.latch_time(index)
        avg = self.integrate(start, start + self.panel.frame_interval_s)
        self._cache_put(self._avg_cache, self._avg_cache_order, index, avg)
        return avg

    def region_waveform(
        self,
        times: np.ndarray,
        rect: tuple[int, int, int, int] | None = None,
    ) -> np.ndarray:
        """Mean luminance of a rectangle sampled at each time in *times*."""
        samples = np.empty(len(times), dtype=np.float32)
        for i, t in enumerate(np.asarray(times, dtype=np.float64)):
            samples[i] = float(np.mean(self.luminance_at(float(t), rect)))
        return samples

    def pixel_waveform(self, times: np.ndarray, row: int, col: int) -> np.ndarray:
        """Luminance waveform of a single pixel sampled at *times*."""
        rect = (row, row + 1, col, col + 1)
        return self.region_waveform(times, rect)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cache_put(
        self,
        cache: dict[int, np.ndarray],
        order: list[int],
        index: int,
        value: np.ndarray,
    ) -> None:
        """FIFO-insert into a per-frame cache bounded by ``cache_frames``."""
        if self.cache_frames < 1:
            return
        cache[index] = value
        order.append(index)
        if len(order) > self.cache_frames:
            cache.pop(order.pop(0), None)

    @staticmethod
    def _crop(
        field: np.ndarray, rect: tuple[int, int, int, int] | None
    ) -> np.ndarray:
        if rect is None:
            return field
        row0, row1, col0, col1 = rect
        return field[row0:row1, col0:col1]

    def _frame_luminance(self, index: int) -> np.ndarray:
        cached = self._lum_cache.get(index)
        if cached is not None:
            return cached
        lum = self.panel.emitted_luminance(self.source.frame(index))
        self._cache_put(self._lum_cache, self._lum_cache_order, index, lum)
        return lum

    def _state_before(self, index: int) -> np.ndarray:
        """Pixel luminance state at the instant frame *index* is latched."""
        if index == 0:
            return self._frame_luminance(0)
        if self._state is not None and self._state_index == index:
            return self._state
        if self._state is None or self._state_index > index or self._state_index < index - 64:
            # (Re)warm the recursion from a settled approximation.
            start = max(index - self._WARMUP_FRAMES, 0)
            state = self._frame_luminance(start).copy()
            self._state_index = start + 1
        else:
            state = self._state
        decay = np.float32(
            np.exp(-self.panel.frame_interval_s / self.panel.response_time_s)
        )
        for i in range(self._state_index, index):
            # State at the latch of frame i+1: relaxed toward frame i's target.
            target = self._frame_luminance(i)
            state = target + (state - target) * decay
        self._state = state
        self._state_index = index
        return state


class AverageFrameStore(Protocol):
    """Keyed storage for memoized per-frame average-luminance fields.

    The default is a plain dict (:class:`DictFrameStore`); a broadcast
    session substitutes a shared-memory backed store so forked receiver
    workers read the very same bytes (``repro.serve.session``).
    """

    def get(self, key: int) -> np.ndarray | None:
        """The field stored under *key*, or None when absent."""
        ...

    def put(self, key: int, field: np.ndarray) -> None:
        """Store *field* under *key* (keys are written at most once)."""
        ...


class DictFrameStore:
    """The trivial in-process :class:`AverageFrameStore`."""

    def __init__(self) -> None:
        self._fields: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._fields)

    def get(self, key: int) -> np.ndarray | None:
        return self._fields.get(key)

    def put(self, key: int, field: np.ndarray) -> None:
        self._fields[key] = field


class MemoizedTimeline:
    """A timeline whose per-frame average fields are rendered once per key.

    The camera pipeline only ever asks a timeline for
    :meth:`DisplayTimeline.frame_average_luminance` (plus the panel and
    the clocking properties), so a broadcast session can stand this
    wrapper between one shared timeline and hundreds of receivers: the
    caller supplies ``key_fn`` mapping a display-frame index to its
    equivalence class -- for a carousel that is ``index % period``,
    because the stream re-airs bit-identical (video frame, data frame,
    pair phase) triples every cycle -- and each class is rendered once,
    no matter how many receivers integrate it.

    The wrapper does **not** memoize :meth:`DisplayTimeline.integrate` or
    :meth:`DisplayTimeline.luminance_at`; those remain per-instance on
    the inner timeline.  ``hits`` / ``misses`` count served reads and
    renders for the ``serve.render_cache.*`` exec-scoped metrics.

    Keys must be *periodic in the liquid-crystal state*, not merely in
    frame content: ``frame_average_luminance`` folds the panel's LC
    relaxation in, so two indices may share a key only when their
    predecessor frames match too.  ``index % period`` over a periodic
    stream satisfies this exactly (see ``docs/broadcast.md``).
    """

    def __init__(
        self,
        inner: DisplayTimeline,
        key_fn: Callable[[int], int],
        store: AverageFrameStore | None = None,
    ) -> None:
        self.inner = inner
        self.key_fn = key_fn
        self.store: AverageFrameStore = DictFrameStore() if store is None else store
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # The timeline surface the camera pipeline consumes
    # ------------------------------------------------------------------
    @property
    def panel(self) -> DisplayPanel:
        """The panel doing the playback."""
        return self.inner.panel

    @property
    def n_frames(self) -> int:
        """Display frames in the underlying stream."""
        return self.inner.n_frames

    @property
    def duration_s(self) -> float:
        """Total playback duration in seconds."""
        return self.inner.duration_s

    def frame_average_luminance(self, index: int) -> np.ndarray:
        """The memoized mean-luminance field of frame *index*'s class."""
        if not (0 <= index < self.n_frames):
            raise IndexError(f"frame index {index} outside [0, {self.n_frames})")
        key = self.key_fn(index)
        field = self.store.get(key)
        if field is not None:
            self.hits += 1
            return field
        self.misses += 1
        field = self.inner.frame_average_luminance(index)
        self.store.put(key, field)
        return field

    def warm(self, indices: "range | list[int]") -> int:
        """Render every class reachable from *indices*; returns new renders.

        Sessions warm sequentially (the LC recursion advances frame by
        frame, so in-order warming renders each class exactly once at
        full accuracy) before any receiver runs; steady state afterwards
        is hit-only.
        """
        before = self.misses
        for index in indices:
            self.frame_average_luminance(index)
        return self.misses - before
