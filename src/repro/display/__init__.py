"""Display simulator substrate.

The paper drives an Eizo FG2421 (24", 1920x1080, 120 Hz) at 100% brightness.
This subpackage models what matters about that panel for both channels:

* :mod:`repro.display.gamma` -- pixel value <-> emitted luminance transfer
  (the reason a fixed pixel-value amplitude produces a larger *luminance*
  modulation on bright content, which drives the Fig. 6 brightness trend).
* :mod:`repro.display.panel` -- the panel itself: geometry, refresh clock,
  peak luminance, and a first-order liquid-crystal response that low-passes
  abrupt frame transitions.
* :mod:`repro.display.scheduler` -- turns a frame sequence into the emitted
  light field sampled at arbitrary instants, which the camera and the
  human-vision models both consume.
"""

from repro.display.gamma import GammaCurve
from repro.display.panel import DisplayPanel
from repro.display.scheduler import (
    AverageFrameStore,
    DictFrameStore,
    DisplayTimeline,
    MemoizedTimeline,
)

__all__ = [
    "AverageFrameStore",
    "DictFrameStore",
    "DisplayTimeline",
    "DisplayPanel",
    "GammaCurve",
    "MemoizedTimeline",
]
