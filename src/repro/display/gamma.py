"""Pixel value to luminance transfer curves.

Displays are not linear: an 8-bit pixel value ``v`` produces luminance
approximately ``L_max * (v / 255) ** gamma``.  InFrame's chessboard keys a
fixed *pixel-value* amplitude ``delta``, so the emitted *luminance*
modulation grows with the base level -- the slope of the gamma curve is
``gamma * L(v) / v``.  Combined with the Ferry-Porter rise of the critical
flicker frequency with luminance, this is what makes bright content flicker
more in the paper's Figure 6 (left).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_in_range, check_positive


class GammaCurve:
    """A power-law display transfer curve.

    Parameters
    ----------
    gamma:
        Exponent of the power law; 2.2 approximates sRGB displays.
    peak_luminance:
        Luminance in cd/m^2 emitted at pixel value 255 and 100% brightness.
    black_level:
        Luminance emitted at pixel value 0 (LCD leakage), in cd/m^2.

    Examples
    --------
    >>> curve = GammaCurve(gamma=2.2, peak_luminance=300.0)
    >>> round(float(curve.to_luminance(255)), 1)
    300.0
    >>> int(curve.to_pixel(curve.to_luminance(128)))
    128
    """

    def __init__(
        self,
        gamma: float = 2.2,
        peak_luminance: float = 300.0,
        black_level: float = 0.3,
    ) -> None:
        self.gamma = check_in_range(gamma, "gamma", 1.0, 4.0)
        self.peak_luminance = check_positive(peak_luminance, "peak_luminance")
        self.black_level = check_in_range(black_level, "black_level", 0.0, peak_luminance)

    def to_luminance(self, pixel_values: np.ndarray | float) -> np.ndarray:
        """Map pixel values in [0, 255] to luminance in cd/m^2."""
        values = np.clip(np.asarray(pixel_values, dtype=np.float32), 0.0, 255.0)
        normalized = values / np.float32(255.0)
        span = self.peak_luminance - self.black_level
        return (self.black_level + span * normalized**self.gamma).astype(np.float32)

    def to_pixel(self, luminance: np.ndarray | float) -> np.ndarray:
        """Map luminance in cd/m^2 back to pixel values in [0, 255]."""
        lum = np.asarray(luminance, dtype=np.float32)
        span = self.peak_luminance - self.black_level
        normalized = np.clip((lum - self.black_level) / span, 0.0, 1.0)
        return (255.0 * normalized ** (1.0 / self.gamma)).astype(np.float32)

    def local_slope(self, pixel_values: np.ndarray | float) -> np.ndarray:
        """d(luminance)/d(pixel value) at the given pixel values.

        This is the factor that converts a small pixel-value amplitude
        (e.g. InFrame's delta) into a luminance amplitude.
        """
        values = np.clip(np.asarray(pixel_values, dtype=np.float32), 0.0, 255.0)
        normalized = values / np.float32(255.0)
        span = self.peak_luminance - self.black_level
        # Guard the v=0 singularity for gamma < 1 (not reachable here) and
        # return the exact derivative elsewhere.
        safe = np.maximum(normalized, 1e-6)
        return (span * self.gamma * safe ** (self.gamma - 1.0) / 255.0).astype(np.float32)

    def local_curvature(self, pixel_values: np.ndarray | float) -> np.ndarray:
        """d^2(luminance)/d(pixel value)^2 at the given pixel values.

        Drives the gamma-compensation correction: a symmetric pixel-value
        modulation of amplitude ``M`` raises the fused luminance by
        ``curvature * M^2 / 2``.
        """
        values = np.clip(np.asarray(pixel_values, dtype=np.float32), 0.0, 255.0)
        normalized = np.maximum(values / np.float32(255.0), 1e-6)
        span = self.peak_luminance - self.black_level
        return (
            span
            * self.gamma
            * (self.gamma - 1.0)
            * normalized ** (self.gamma - 2.0)
            / (255.0**2)
        ).astype(np.float32)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GammaCurve(gamma={self.gamma}, peak_luminance={self.peak_luminance}, "
            f"black_level={self.black_level})"
        )
