"""The photon pipeline on the execution engine.

One work item is a :class:`~repro.runtime.scheduler.WorkChunk` of camera
frame indices.  A worker renders each capture from the display timeline
(with the capture's own spawn-keyed RNG), extracts the decoder's noise
observation, parks the pixels in a shared-memory slot, and sends back
only slot handles, observations and timings.  The parent drains slots as
chunks complete and reassembles the ordered capture/observation lists --
bit-identical to serial execution, because no randomness is shared
across captures (see ``docs/runtime.md`` for the contract).

Chunks are contiguous so each worker's timeline cache stays warm: one
capture integrates a handful of consecutive display frames, and
consecutive captures overlap only at chunk boundaries.
"""

from __future__ import annotations

import time
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.camera.capture import CapturedFrame, TimelineLike
from repro.display.scheduler import DisplayTimeline
from repro.obs import Telemetry
from repro.obs.trace import EXEC
from repro.runtime.engine import ExecutionEngine
from repro.runtime.profiler import StageTimers
from repro.runtime.scheduler import WorkChunk, plan_chunks
from repro.runtime.shm import SharedFramePool, SlotRef, shared_memory_available

if TYPE_CHECKING:  # imported lazily to keep repro.runtime free of repro.core
    from repro.core.decoder import BlockObservation, InFrameDecoder


class CaptureSource(Protocol):
    """The camera-shaped surface the capture workers drive.

    Satisfied by :class:`~repro.camera.capture.CameraModel` and by
    wrappers that perturb it (``repro.faults.FaultInjectedCamera``); the
    runtime layer only needs the sensor geometry and the render call.
    """

    @property
    def height(self) -> int: ...

    @property
    def width(self) -> int: ...

    def capture_frame(
        self,
        timeline: TimelineLike,
        index: int,
        rng: np.random.Generator | None = None,
    ) -> CapturedFrame: ...


@dataclass(frozen=True)
class _LinkContext:
    """Everything a worker needs; inherited whole under a forked pool."""

    timeline: DisplayTimeline
    camera: CaptureSource
    decoder: InFrameDecoder
    pool: SharedFramePool | None
    collect_telemetry: bool = True


@dataclass(frozen=True)
class _ChunkTask:
    """One dispatched chunk plus the slots the parent pre-acquired."""

    chunk: WorkChunk
    slots: tuple[SlotRef, ...] | None = None


@dataclass(frozen=True)
class _CaptureRecord:
    """A captured frame travelling back from a worker (pixels by slot)."""

    index: int
    start_time_s: float
    mid_exposure_s: float
    pixels: np.ndarray | None
    slot: SlotRef | None
    observation: BlockObservation


@dataclass(frozen=True)
class _ChunkResult:
    records: tuple[_CaptureRecord, ...]
    timings: dict
    telemetry: dict[str, object] | None = None


@dataclass(frozen=True)
class LinkExecution:
    """Ordered outputs of the capture+observe stages, plus accounting."""

    captures: list[CapturedFrame]
    observations: list[BlockObservation]
    mode: str
    workers: int
    chunks: int
    retries: int
    timers: StageTimers
    crashed_chunks: tuple[int, ...] = ()
    serial_fallback: bool = False


def _capture_chunk(task: _ChunkTask, ctx: _LinkContext) -> _ChunkResult:
    """Render, film and observe every capture of one chunk (worker side)."""
    from repro.core.decoder import record_observation_telemetry

    timers = StageTimers()
    telemetry = None
    if ctx.collect_telemetry:
        # A deterministic track name from the chunk plan keeps (track,
        # span_id) unique after the parent merges all chunk exports.
        telemetry = Telemetry(track=f"chunk-{task.chunk.index:03d}")
    records = []
    for position, index in enumerate(task.chunk.items):
        rng = task.chunk.item_rng(index)
        with timers.stage("render"), _maybe_span(telemetry, "render", index):
            capture = ctx.camera.capture_frame(ctx.timeline, index, rng=rng)
        with timers.stage("observe"), _maybe_span(telemetry, "observe", index):
            observation = ctx.decoder.observe(capture)
        if telemetry is not None:
            record_observation_telemetry(observation, telemetry)
        if task.slots is not None:
            with timers.stage("transfer"):
                slot = ctx.pool.write(task.slots[position], capture.pixels)
            pixels = None
        else:
            slot, pixels = None, capture.pixels
        records.append(
            _CaptureRecord(
                index=capture.index,
                start_time_s=capture.start_time_s,
                mid_exposure_s=capture.mid_exposure_s,
                pixels=pixels,
                slot=slot,
                observation=observation,
            )
        )
    return _ChunkResult(
        records=tuple(records),
        timings=timers.as_dict(),
        telemetry=telemetry.export() if telemetry is not None else None,
    )


def _maybe_span(
    telemetry: Telemetry | None, name: str, capture: int
) -> AbstractContextManager[None]:
    """A telemetry span for one pipeline stage, or a no-op when disabled."""
    if telemetry is None:
        return nullcontext()
    return telemetry.tracer.span(name, capture=capture)


def execute_link_captures(
    timeline: DisplayTimeline,
    camera: CaptureSource,
    decoder: InFrameDecoder,
    n_frames: int,
    seed: int,
    workers: int | None = None,
    max_retries: int = 2,
    start_index: int = 0,
    telemetry: Telemetry | None = None,
) -> LinkExecution:
    """Run capture + observe for *n_frames* camera frames, possibly in parallel.

    ``workers in (None, 0, 1)`` executes in-process (no pool, no shared
    memory) but on the same per-capture RNG streams and the same code
    path, so the results are identical either way.

    When *telemetry* is given, workers collect per-capture metrics and
    spans locally (on ``chunk-NNN`` tracks) and their exports are folded
    into it as chunks drain; scheduling and shared-memory accounting land
    in exec-scoped metrics on the parent side.
    """
    serial = workers is None or int(workers) <= 1
    engine = ExecutionEngine(workers=1 if serial else int(workers),
                             max_retries=max_retries, telemetry=telemetry)
    if serial or not engine.parallel:
        chunks = plan_chunks(n_frames, n_chunks=1, seed=seed, start=start_index)
    else:
        # Two chunks per worker: capture cost is homogeneous, so near-equal
        # chunks already balance load, and every extra chunk pays a cold
        # timeline cache (the LC-state warmup plus a few display-frame
        # renders) again.
        chunks = plan_chunks(
            n_frames, n_chunks=engine.workers * 2, seed=seed, start=start_index
        )
    use_pool = engine.parallel and len(chunks) > 1 and shared_memory_available()
    pool = None
    if use_pool:
        slots_needed = engine.max_inflight * max(len(c) for c in chunks)
        pool = SharedFramePool(
            (camera.height, camera.width), np.float32, n_slots=slots_needed
        )
    ctx = _LinkContext(
        timeline=timeline,
        camera=camera,
        decoder=decoder,
        pool=pool,
        collect_telemetry=telemetry is not None,
    )
    timers = StageTimers()
    by_index: dict[int, tuple[CapturedFrame, BlockObservation]] = {}
    if telemetry is not None:
        telemetry.metrics.counter("exec.chunks", scope=EXEC).inc(len(chunks))
        if pool is not None:
            telemetry.metrics.gauge("exec.shm_slots").set(pool.n_slots)

    def prepare(_i: int, task: _ChunkTask) -> _ChunkTask:
        if pool is None or task.slots is not None:
            return task
        prepared = replace(
            task, slots=tuple(pool.acquire() for _ in range(len(task.chunk)))
        )
        if telemetry is not None:
            telemetry.metrics.gauge("exec.shm_peak_occupancy").set(
                pool.n_slots - pool.n_free
            )
        return prepared

    def drain(_i: int, result: _ChunkResult) -> None:
        timers.merge(result.timings)
        if telemetry is not None and result.telemetry is not None:
            telemetry.merge_export(result.telemetry)
        with timers.stage("transfer"):
            for record in result.records:
                if record.slot is not None:
                    pixels = pool.read(record.slot, copy=True)
                    pool.release(record.slot)
                else:
                    pixels = record.pixels
                by_index[record.index] = (
                    CapturedFrame(
                        pixels=pixels,
                        index=record.index,
                        start_time_s=record.start_time_s,
                        mid_exposure_s=record.mid_exposure_s,
                    ),
                    record.observation,
                )

    try:
        engine.map(
            _capture_chunk,
            [_ChunkTask(chunk=c) for c in chunks],
            context=ctx,
            on_result=drain,
            prepare=prepare,
        )
    finally:
        if pool is not None:
            pool.close()
    if telemetry is not None:
        stats = engine.stats
        telemetry.metrics.counter("exec.retries", scope=EXEC).inc(stats.retries)
        telemetry.metrics.counter("exec.crashes", scope=EXEC).inc(stats.crashes)
        telemetry.metrics.counter("exec.serial_items", scope=EXEC).inc(
            stats.serial_items
        )
    ordered = [by_index[i] for i in sorted(by_index)]
    return LinkExecution(
        captures=[pair[0] for pair in ordered],
        observations=[pair[1] for pair in ordered],
        mode=engine.stats.mode,
        workers=engine.workers,
        chunks=len(chunks),
        retries=engine.stats.retries,
        timers=timers,
        crashed_chunks=tuple(engine.stats.crashed_items),
        serial_fallback=engine.stats.mode == "serial-fallback",
    )


def wall_clock() -> float:
    """The parent-side wall clock the reports are stamped with."""
    return time.perf_counter()
