"""The process-pool execution engine.

:class:`ExecutionEngine` maps a module-level function over a list of work
items on a pool of worker processes, with the three properties the
photon pipeline needs and plain ``Pool.map`` lacks:

* **windowed dispatch** -- at most ``max_inflight`` items are in flight,
  so a bounded shared-memory pool can recycle slots as results drain;
* **crash robustness** -- a dying worker (OOM kill, native-extension
  fault) breaks a ``concurrent.futures`` pool for good; the engine
  detects the break, rebuilds the pool, retries the unfinished items a
  bounded number of times, and finally completes them in-process;
* **cheap context transfer** -- the per-run context (display timeline,
  camera, decoder, frame pool) is handed to workers through the pool
  initializer, which under the default ``fork`` start method is plain
  memory inheritance: nothing is pickled per task except the item.

Ordinary exceptions raised by the work function are *not* retried -- they
are deterministic and propagate to the caller unchanged.  Only pool
breakage (the process vanished) triggers the retry path.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.obs import Telemetry
from repro.obs.live import record_live
from repro.obs.trace import EXEC

#: ``func(item, context) -> result`` -- must be a module-level function.
WorkFn = Callable[[Any, Any], Any]
#: ``on_result(index, result)`` -- called the moment each item finishes.
ResultFn = Callable[[int, Any], None]
#: ``prepare(index, item) -> item`` -- called right before dispatch.
PrepareFn = Callable[[int, Any], Any]
#: ``tick(inflight_indices) -> indices_to_abandon`` -- a supervision hook
#: called at least every ``tick_interval_s`` during a pool pass.
TickFn = Callable[[Sequence[int]], Iterable[int]]
#: ``on_abandon(index, reason)`` -- reason is ``"tick"`` (abandoned by
#: the tick callback) or ``"crash"`` (per-item crash budget exhausted).
AbandonFn = Callable[[int, str], None]
#: ``dispatch_gate() -> bool`` -- False stops new items from dispatching.
GateFn = Callable[[], bool]


def default_workers() -> int:
    """A sensible worker count for this machine (CPUs, capped at 8)."""
    return max(1, min(os.cpu_count() or 1, 8))


def resolve_start_method() -> str | None:
    """The preferred multiprocessing start method, or None if unusable.

    ``fork`` makes context transfer free and is available on every POSIX
    platform; without it (Windows) the engine still works provided the
    context pickles, but callers should prefer serial there.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return "fork"
    return methods[0] if methods else None


@dataclass
class EngineStats:
    """What happened during one :meth:`ExecutionEngine.map` call."""

    mode: str = "serial"
    workers: int = 1
    items: int = 0
    retries: int = 0
    serial_items: int = 0  # items completed in-process (serial mode or fallback)
    crashes: int = 0  # pool breakages observed
    crashed_items: list[int] = field(default_factory=list)  # items a pool pass lost
    crash_counts: dict[int, int] = field(default_factory=dict)  # crashes per item
    abandoned_items: list[int] = field(default_factory=list)  # tick/crash abandons
    undispatched_items: list[int] = field(default_factory=list)  # gate-halted items
    errors: list[str] = field(default_factory=list)


# Per-worker context installed by the pool initializer (inherited state
# under fork; pickled once per worker otherwise).
_WORKER_CONTEXT: Any = None


def _init_worker(context: Any) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_task(func: WorkFn, item: Any) -> Any:
    return func(item, _WORKER_CONTEXT)


class ExecutionEngine:
    """Maps a function over items on a crash-tolerant process pool.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` picks :func:`default_workers`, and
        ``<= 1`` runs everything in-process.
    max_retries:
        Pool rebuilds allowed after crashes before falling back.
    max_inflight:
        Bound on concurrently dispatched items (default ``workers + 2``);
        this is the window a :class:`~repro.runtime.shm.SharedFramePool`
        must cover.
    fallback_serial:
        Complete unfinished items in-process once retries are exhausted
        (or the pool cannot be built at all) instead of raising.
    start_method:
        Multiprocessing start method; default prefers ``fork``.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` that receives exec-scoped
        pool accounting: one ``exec.pool_pass`` span per pool lifetime
        and ``exec.pool_builds`` / ``exec.pool_rebuilds`` counters.
    """

    def __init__(
        self,
        workers: int | None = None,
        max_retries: int = 2,
        max_inflight: int | None = None,
        fallback_serial: bool = True,
        start_method: str | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(int(workers), 1)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)
        self.max_inflight = (
            self.workers + 2 if max_inflight is None else max(int(max_inflight), 1)
        )
        self.fallback_serial = bool(fallback_serial)
        self.start_method = start_method or resolve_start_method()
        self.telemetry = telemetry
        self.stats = EngineStats()

    def _pass_span(
        self, n_pending: int, rebuild: bool
    ) -> AbstractContextManager[None]:
        """An exec-scoped span around one pool lifetime (no-op untracked)."""
        if self.telemetry is None:
            return nullcontext()
        metrics = self.telemetry.metrics
        metrics.counter("exec.pool_builds", scope=EXEC).inc()
        if rebuild:
            metrics.counter("exec.pool_rebuilds", scope=EXEC).inc()
        return self.telemetry.tracer.span(
            "exec.pool_pass", category=EXEC, pending=n_pending, rebuild=rebuild
        )

    @property
    def parallel(self) -> bool:
        """Whether this engine will even try to use a pool."""
        return self.workers > 1 and self.start_method is not None

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map(
        self,
        func: WorkFn,
        items: Iterable[Any],
        context: Any = None,
        on_result: ResultFn | None = None,
        prepare: PrepareFn | None = None,
        *,
        tick: TickFn | None = None,
        tick_interval_s: float = 0.25,
        dispatch_gate: GateFn | None = None,
        on_abandon: AbandonFn | None = None,
        abandon_after_crashes: int | None = None,
    ) -> list[Any]:
        """Apply ``func(item, context)`` to every item; ordered results.

        *func* must be a module-level function (it crosses the process
        boundary by reference).  *on_result* is called as ``(index,
        result)`` the moment each item finishes -- out of order under a
        pool -- and is how callers drain shared-memory slots.  *prepare*
        is called as ``(index, item) -> item`` right before an item is
        dispatched (at most ``max_inflight`` items are prepared but not
        yet drained) and is how callers *acquire* those slots; the
        returned item replaces the original, so a retried item sees its
        own prepared state and can keep its slots.

        The supervision hooks (all optional, all no-ops by default):

        *tick* is called with the currently in-flight indices at least
        every *tick_interval_s* during a pool pass (and between items in
        serial mode, with an empty tuple -- a serial item cannot be
        interrupted).  Indices it returns are **abandoned**: their
        futures are dropped (the worker keeps running; its eventual
        result is discarded), their results stay ``None``, and
        *on_abandon* fires with reason ``"tick"``.  This is how the
        campaign master reclaims heartbeat-stale units without waiting
        out the whole batch.

        *dispatch_gate* is consulted before dispatching each item; once
        it returns False no further items are submitted, in-flight items
        drain normally, and the rest are recorded as
        ``stats.undispatched_items`` (never serially fallen back) --
        the graceful-drain path.

        *abandon_after_crashes* bounds how many crashed pool passes may
        lose one item before the engine stops retrying it and abandons
        it via *on_abandon* with reason ``"crash"`` -- the hook that
        keeps a worker-killing poison item from reaching the in-process
        serial fallback and taking the caller down with it.
        """
        items = list(items)
        self.stats = EngineStats(workers=self.workers, items=len(items))
        results: list[Any] = [None] * len(items)
        if not items:
            return results
        if not self.parallel or len(items) == 1:
            self.stats.mode = "serial"
            self._run_serial(
                func, items, context, range(len(items)), results, on_result, prepare,
                tick=tick, dispatch_gate=dispatch_gate,
            )
            return results

        self.stats.mode = "parallel"
        pending: deque[int] = deque(range(len(items)))
        attempts = 0
        while pending:
            if dispatch_gate is not None and not dispatch_gate():
                self.stats.undispatched_items.extend(pending)
                return results
            if attempts > self.max_retries:
                break
            try:
                with self._pass_span(len(pending), rebuild=attempts > 0):
                    crashed, leftover, broken = self._pool_pass(
                        func, items, context, pending, results, on_result, prepare,
                        tick=tick, tick_interval_s=tick_interval_s,
                        dispatch_gate=dispatch_gate, on_abandon=on_abandon,
                    )
            except OSError as exc:  # pool could not even be built
                self.stats.errors.append(repr(exc))
                break
            retry: list[int] = []
            for index in crashed:
                count = self.stats.crash_counts.get(index, 0) + 1
                self.stats.crash_counts[index] = count
                if index not in self.stats.crashed_items:
                    self.stats.crashed_items.append(index)
                if (
                    abandon_after_crashes is not None
                    and count >= abandon_after_crashes
                ):
                    self.stats.abandoned_items.append(index)
                    if on_abandon is not None:
                        on_abandon(index, "crash")
                else:
                    retry.append(index)
            pending = deque(retry + leftover)
            if broken:
                attempts += 1
                self.stats.crashes += 1
                if attempts <= self.max_retries and pending:
                    self.stats.retries += 1
            elif pending:
                # The pass ended cleanly but left items: the dispatch
                # gate closed mid-pass.  Record and stop -- a drain is
                # not a crash, so no serial fallback.
                self.stats.undispatched_items.extend(pending)
                return results
        if pending:
            if not self.fallback_serial:
                raise BrokenProcessPool(
                    f"{len(pending)} work items unfinished after "
                    f"{self.max_retries} pool retries"
                )
            self.stats.mode = "serial-fallback"
            self._run_serial(
                func, items, context, list(pending), results, on_result, prepare,
                tick=tick, dispatch_gate=dispatch_gate,
            )
        return results

    def _run_serial(
        self,
        func: WorkFn,
        items: list[Any],
        context: Any,
        indices: Iterable[int],
        results: list[Any],
        on_result: ResultFn | None,
        prepare: PrepareFn | None = None,
        tick: TickFn | None = None,
        dispatch_gate: GateFn | None = None,
    ) -> None:
        todo = list(indices)
        for position, index in enumerate(todo):
            if dispatch_gate is not None and not dispatch_gate():
                self.stats.undispatched_items.extend(todo[position:])
                return
            if tick is not None:
                tick(())  # nothing abandonable: the item runs to completion
            if prepare is not None:
                items[index] = prepare(index, items[index])
            results[index] = func(items[index], context)
            self.stats.serial_items += 1
            # Live progress is exec-scoped and advisory: a no-op unless
            # a LiveCollector is installed for this process.
            record_live("engine.items_done", self.stats.serial_items)
            if on_result is not None:
                on_result(index, results[index])

    def _pool_pass(
        self,
        func: WorkFn,
        items: list[Any],
        context: Any,
        pending: Sequence[int],
        results: list[Any],
        on_result: ResultFn | None,
        prepare: PrepareFn | None = None,
        tick: TickFn | None = None,
        tick_interval_s: float = 0.25,
        dispatch_gate: GateFn | None = None,
        on_abandon: AbandonFn | None = None,
    ) -> tuple[list[int], list[int], bool]:
        """One pool lifetime.

        Returns ``(crashed, leftover, broken)``: the indices whose
        futures died with the pool, the indices left queued or in flight
        when the pass ended (collateral of a breakage, or gate-halted),
        and whether the pool broke.  Tick-abandoned indices are in
        neither list -- their futures keep running unobserved and their
        results are discarded.
        """
        queue: deque[int] = deque(pending)
        inflight: dict[Future[Any], int] = {}
        crashed: list[int] = []
        mp_context = multiprocessing.get_context(self.start_method)
        executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(context,),
        )
        broken = False
        halted = False
        last_tick = time.monotonic()
        try:
            while (queue or inflight) and not broken:
                while queue and len(inflight) < self.max_inflight and not halted:
                    if dispatch_gate is not None and not dispatch_gate():
                        halted = True
                        break
                    index = queue.popleft()
                    if prepare is not None:
                        items[index] = prepare(index, items[index])
                    try:
                        future = executor.submit(_run_task, func, items[index])
                    except (BrokenProcessPool, RuntimeError):
                        queue.appendleft(index)
                        broken = True
                        break
                    inflight[future] = index
                if not inflight:
                    break
                record_live("engine.inflight", len(inflight))
                record_live("engine.pending", len(queue))
                timeout = tick_interval_s if tick is not None else None
                done, _ = wait(
                    list(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        self.stats.errors.append(repr(exc))
                        crashed.append(index)
                        broken = True
                    else:
                        results[index] = result
                        if on_result is not None:
                            on_result(index, result)
                if tick is not None and not broken:
                    now = time.monotonic()
                    if not done or now - last_tick >= tick_interval_s:
                        last_tick = now
                        abandon = set(tick(tuple(inflight.values())))
                        if abandon:
                            for future, index in list(inflight.items()):
                                if index in abandon:
                                    del inflight[future]
                                    self.stats.abandoned_items.append(index)
                                    if on_abandon is not None:
                                        on_abandon(index, "tick")
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        leftover = [inflight[f] for f in inflight] + list(queue)
        return crashed, leftover, broken
