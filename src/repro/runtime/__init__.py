"""repro.runtime: the parallel batched execution engine.

The photon pipeline (encode -> display -> capture -> decode) is
embarrassingly parallel per camera frame.  This package supplies the
execution substrate that exploits it without changing a single decoded
bit:

* :mod:`~repro.runtime.scheduler` -- deterministic chunk plans and
  spawn-keyed per-item RNG streams (the determinism contract);
* :mod:`~repro.runtime.shm` -- a small shared-memory slot pool that moves
  frames between processes without pickling them;
* :mod:`~repro.runtime.engine` -- a crash-tolerant process-pool mapper
  with windowed dispatch, bounded retry and serial fallback;
* :mod:`~repro.runtime.profiler` -- per-stage wall/CPU timers merged into
  a :class:`RuntimeReport` (frames/sec, bits/sec, stage breakdown);
* :mod:`~repro.runtime.link_exec` -- the capture+observe job that
  ``run_link(..., workers=N)`` dispatches.

See ``docs/runtime.md`` for the design.
"""

from repro.runtime.engine import (
    EngineStats,
    ExecutionEngine,
    default_workers,
    resolve_start_method,
)
from repro.runtime.link_exec import LinkExecution, execute_link_captures
from repro.runtime.profiler import RuntimeReport, StageTimers, StageTiming
from repro.runtime.scheduler import WorkChunk, plan_chunks, spawn_rng
from repro.runtime.shm import SharedFramePool, SlotRef, shared_memory_available

__all__ = [
    "EngineStats",
    "ExecutionEngine",
    "LinkExecution",
    "RuntimeReport",
    "SharedFramePool",
    "SlotRef",
    "StageTimers",
    "StageTiming",
    "WorkChunk",
    "default_workers",
    "execute_link_captures",
    "plan_chunks",
    "resolve_start_method",
    "shared_memory_available",
    "spawn_rng",
]
