"""Lightweight observability: per-stage timers and the run report.

Workers time their stages locally (wall clock and CPU clock), the
timings ride back with each chunk's result, and the parent merges them
into one :class:`RuntimeReport` -- frames/sec, bits/sec and a per-stage
breakdown that :func:`repro.core.pipeline.run_link`, the CLIs and the
benchmarks surface.  The timers are plain counters, cheap enough to stay
on unconditionally.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class StageTiming:
    """Accumulated cost of one pipeline stage."""

    wall_s: float = 0.0
    cpu_s: float = 0.0
    calls: int = 0

    def add(self, wall_s: float, cpu_s: float, calls: int = 1) -> None:
        self.wall_s += wall_s
        self.cpu_s += cpu_s
        self.calls += calls

    def as_dict(self) -> dict[str, float | int]:
        return {"wall_s": self.wall_s, "cpu_s": self.cpu_s, "calls": self.calls}


class StageTimers:
    """A named collection of :class:`StageTiming` counters."""

    def __init__(self) -> None:
        self._stages: dict[str, StageTiming] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under *name* (wall + CPU)."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            self._timing(name).add(
                time.perf_counter() - wall0, time.process_time() - cpu0
            )

    def _timing(self, name: str) -> StageTiming:
        timing = self._stages.get(name)
        if timing is None:
            timing = self._stages[name] = StageTiming()
        return timing

    def merge(self, other: "StageTimers | dict[str, dict[str, float | int]]") -> None:
        """Fold another timer set (or its serialized form) into this one.

        The dict form accepts any ``as_dict``-shaped payload: missing
        fields default to zero and extra keys are ignored, so timings
        recorded by a newer (or older) serializer still merge instead of
        raising ``TypeError``.
        """
        if isinstance(other, StageTimers):
            items = [(k, t.wall_s, t.cpu_s, t.calls) for k, t in other._stages.items()]
        else:
            items = [
                (
                    k,
                    float(v.get("wall_s", 0.0)),
                    float(v.get("cpu_s", 0.0)),
                    int(v.get("calls", 0)),
                )
                for k, v in other.items()
            ]
        for name, wall_s, cpu_s, calls in items:
            self._timing(name).add(wall_s, cpu_s, calls)

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        return {name: timing.as_dict() for name, timing in self._stages.items()}


@dataclass(frozen=True)
class RuntimeReport:
    """What one engine-driven run cost, and where the time went.

    Attributes
    ----------
    mode:
        ``"serial"`` (in-process), ``"parallel"`` (process pool) or
        ``"serial-fallback"`` (the pool was unavailable or kept dying and
        the engine completed the work in-process).
    workers:
        Worker processes requested.
    chunks, frames:
        Work units dispatched and items (camera frames) processed.
    bits:
        Payload bits decoded (0 when the run carries no scoring info).
    elapsed_s:
        Parent-side wall clock for the whole run.
    retries:
        Pool rebuilds after worker crashes.
    stages:
        Per-stage breakdown, ``{name: {wall_s, cpu_s, calls}}``.  Worker
        stages sum *across* workers, so their wall total can exceed
        ``elapsed_s`` -- that surplus is the parallelism actually won.
    crashed_chunks:
        Chunk indices a pool pass lost to ``BrokenProcessPool`` (each was
        subsequently retried on a rebuilt pool or completed in-process).
    serial_fallback:
        True when the engine exhausted its pool retries (or could not
        build a pool) and finished the remaining chunks in-process.
    """

    mode: str
    workers: int
    chunks: int
    frames: int
    bits: int
    elapsed_s: float
    retries: int = 0
    stages: dict[str, dict[str, float | int]] = field(default_factory=dict)
    crashed_chunks: tuple[int, ...] = ()
    serial_fallback: bool = False

    @property
    def frames_per_s(self) -> float:
        """Camera frames processed per wall-clock second."""
        return self.frames / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def bits_per_s(self) -> float:
        """Payload bits decoded per wall-clock second of processing."""
        return self.bits / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (used by the CLIs and the bench output)."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "chunks": self.chunks,
            "frames": self.frames,
            "bits": self.bits,
            "elapsed_s": self.elapsed_s,
            "retries": self.retries,
            "frames_per_s": self.frames_per_s,
            "bits_per_s": self.bits_per_s,
            "stages": self.stages,
            "crashed_chunks": list(self.crashed_chunks),
            "serial_fallback": self.serial_fallback,
        }

    def summary(self) -> str:
        """A small human-readable profile block for ``--profile`` output."""
        lines = [
            f"runtime: mode={self.mode} workers={self.workers} "
            f"chunks={self.chunks} retries={self.retries}",
            f"  {self.frames} frames in {self.elapsed_s:.2f} s "
            f"({self.frames_per_s:.1f} frames/s, {self.bits_per_s / 1000:.2f} kbit/s)",
        ]
        if self.crashed_chunks or self.serial_fallback:
            chunks = ",".join(str(i) for i in self.crashed_chunks) or "none"
            fallback = "engaged" if self.serial_fallback else "not needed"
            lines.append(
                f"  crash recovery: chunks [{chunks}] retried "
                f"{self.retries}x, serial fallback {fallback}"
            )
        for name in sorted(self.stages):
            s = self.stages[name]
            lines.append(
                f"  {name:10s} wall={s['wall_s']:7.3f} s  cpu={s['cpu_s']:7.3f} s  "
                f"calls={s['calls']}"
            )
        return "\n".join(lines)

    @staticmethod
    def merge(reports: "list[RuntimeReport]") -> "RuntimeReport | None":
        """Fold several runs (e.g. transport rounds) into one report."""
        reports = [r for r in reports if r is not None]
        if not reports:
            return None
        timers = StageTimers()
        for report in reports:
            timers.merge(report.stages)
        modes = {r.mode for r in reports}
        return RuntimeReport(
            mode=modes.pop() if len(modes) == 1 else "mixed",
            workers=max(r.workers for r in reports),
            chunks=sum(r.chunks for r in reports),
            frames=sum(r.frames for r in reports),
            bits=sum(r.bits for r in reports),
            elapsed_s=sum(r.elapsed_s for r in reports),
            retries=sum(r.retries for r in reports),
            stages=timers.as_dict(),
            crashed_chunks=tuple(i for r in reports for i in r.crashed_chunks),
            serial_fallback=any(r.serial_fallback for r in reports),
        )
