"""Chunk scheduling and seed-stamped RNG spawning.

The photon pipeline is embarrassingly parallel once the data frames are
scheduled: every camera capture renders, films and measures independently
of every other.  The scheduler splits an index range into contiguous
:class:`WorkChunk` units -- contiguous so each worker's display-frame
cache stays warm (consecutive captures share the display frames at their
boundary) -- and stamps every *item* with its own RNG stream.

Determinism contract
--------------------
Randomness is never drawn from a generator shared across items.  Each
item ``i`` of a run seeded with ``seed`` uses::

    np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))

``spawn_key`` addressing is order-independent: it does not matter which
worker computes item ``i``, or in what order, or whether there are any
workers at all -- the draws are identical.  This is what makes parallel
output *bit-identical* to serial execution (see ``docs/runtime.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int


@dataclass(frozen=True)
class WorkChunk:
    """One contiguous, seed-stamped unit of work.

    Attributes
    ----------
    index:
        Position of the chunk in the plan (0-based).
    start, stop:
        Half-open item range ``[start, stop)`` this chunk covers.
    seed:
        The run seed every item RNG is spawned from.
    """

    index: int
    start: int
    stop: int
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.start < self.stop):
            raise ValueError(f"need 0 <= start < stop, got [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def items(self) -> range:
        """The item indices this chunk covers."""
        return range(self.start, self.stop)

    def item_rng(self, item: int) -> np.random.Generator:  # checks: worker-scope
        """The spawned generator for *item* (must lie inside the chunk)."""
        if item not in self.items:
            raise ValueError(f"item {item} outside chunk [{self.start}, {self.stop})")
        return spawn_rng(self.seed, item)


def spawn_rng(seed: int, *key: int) -> np.random.Generator:  # checks: worker-scope
    """A generator on the stream addressed by ``(seed, key)``.

    Streams with distinct keys are statistically independent, and the
    addressing is stable across processes and schedule orders.
    """
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=tuple(key)))


def plan_chunks(
    n_items: int,
    n_chunks: int | None = None,
    chunk_size: int | None = None,
    seed: int = 0,
    start: int = 0,
) -> list[WorkChunk]:
    """Split ``[start, start + n_items)`` into contiguous chunks.

    Exactly one of *n_chunks* / *chunk_size* may be given; with neither,
    one chunk covers everything.  When *n_items* does not divide evenly
    the leading chunks carry the remainder, so sizes differ by at most
    one and the plan is a pure function of its arguments.
    """
    check_positive_int(n_items, "n_items")
    if n_chunks is not None and chunk_size is not None:
        raise ValueError("give n_chunks or chunk_size, not both")
    if chunk_size is not None:
        check_positive_int(chunk_size, "chunk_size")
        n_chunks = (n_items + chunk_size - 1) // chunk_size
    elif n_chunks is None:
        n_chunks = 1
    check_positive_int(n_chunks, "n_chunks")
    n_chunks = min(n_chunks, n_items)
    base, extra = divmod(n_items, n_chunks)
    chunks: list[WorkChunk] = []
    at = start
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(WorkChunk(index=index, start=at, stop=at + size, seed=seed))
        at += size
    return chunks
