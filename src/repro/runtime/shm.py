"""Zero-copy frame transfer between workers and the parent process.

Pickling a captured frame back through the process pool's result queue
costs a serialize + IPC + deserialize round trip per frame.  The
:class:`SharedFramePool` replaces that with one ``multiprocessing``
shared-memory segment carved into fixed-size slots: the parent acquires a
slot, the worker writes its frame's pixels straight into the slot's
buffer, and only a tiny :class:`SlotRef` (slot number + shape) travels
through the queue.

The pool is deliberately small: slots are recycled as results are
drained, so the segment is sized for the in-flight window, not the whole
run.  Workers reach the segment through fork inheritance (the engine
ships the pool inside the fork-inherited worker context), which sidesteps
the per-process ``resource_tracker`` re-registration that attach-by-name
suffers from.  Everything degrades gracefully -- when shared memory
cannot be created (locked-down ``/dev/shm``, exotic platforms) or the
pool is exhausted, callers fall back to returning arrays through the
result queue (see :func:`shared_memory_available`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None  # type: ignore[assignment]


def shared_memory_available() -> bool:
    """Whether shared-memory segments can actually be created here."""
    if _shm is None:
        return False
    try:
        probe = _shm.SharedMemory(create=True, size=16)
    except OSError:
        return False
    probe.close()
    try:
        probe.unlink()
    except OSError:  # pragma: no cover - unlink raced by the OS
        pass
    return True


@dataclass(frozen=True)
class SlotRef:
    """A picklable handle to one frame sitting in the pool's segment."""

    slot: int
    shape: tuple[int, ...]
    dtype: str


class SharedFramePool:
    """A slot allocator over one shared-memory segment.

    Parameters
    ----------
    slot_shape, dtype:
        Shape and dtype of the frames every slot holds (slots are
        homogeneous; the camera's capture resolution is fixed per run).
    n_slots:
        Slots in the pool -- size it to the scheduler's in-flight window
        (``workers + lookahead`` chunks worth of frames), not the run.

    The parent :meth:`acquire`\\ s a slot before dispatching work and
    :meth:`release`\\ s it after draining the result; workers only ever
    :meth:`write` into slots the parent handed them, so the free list
    needs no cross-process locking.

    Slots are refcounted: :meth:`acquire` hands out a slot holding one
    reference, :meth:`retain` adds readers, and :meth:`release` drops
    one reference, recycling the slot only when the last reader lets
    go.  The single-reader pipeline never notices (one acquire, one
    release), while a broadcast session can pin its emitted-frame slots
    across many concurrent fleet runs (``repro.serve``) and recycle
    them exactly once.
    """

    def __init__(
        self, slot_shape: tuple[int, ...], dtype: np.dtype | str, n_slots: int
    ) -> None:
        check_positive_int(n_slots, "n_slots")
        if _shm is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.slot_shape = tuple(int(s) for s in slot_shape)
        self.dtype = np.dtype(dtype)
        self.n_slots = int(n_slots)
        self.slot_bytes = int(np.prod(self.slot_shape)) * self.dtype.itemsize
        if self.slot_bytes < 1:
            raise ValueError(f"slot shape {slot_shape} holds zero bytes")
        self._segment = _shm.SharedMemory(
            create=True, size=self.slot_bytes * self.n_slots
        )
        self._free = list(range(self.n_slots - 1, -1, -1))
        self._refcounts: dict[int, int] = {}
        # Allocation and refcounting are cheap read-modify-writes; the
        # lock makes them safe for same-process concurrent readers (a
        # broadcast session's fleet threads), not across processes.
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Parent-side allocation
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """OS name of the backing segment."""
        return self._segment.name

    @property
    def n_free(self) -> int:
        """Slots currently available."""
        return len(self._free)

    def acquire(self) -> SlotRef:
        """Take a free slot (refcount 1); raises when the pool is exhausted."""
        with self._lock:
            if not self._free:
                raise RuntimeError(
                    f"shared frame pool exhausted ({self.n_slots} slots all in flight)"
                )
            slot = self._free.pop()
            self._refcounts[slot] = 1
        return SlotRef(slot=slot, shape=self.slot_shape, dtype=self.dtype.str)

    def retain(self, ref: SlotRef) -> SlotRef:
        """Add one reader reference to *ref*'s slot.

        Every :meth:`retain` must be balanced by a :meth:`release`; the
        slot returns to the free list only when the count reaches zero.
        """
        self._check_slot(ref)
        with self._lock:
            if ref.slot not in self._refcounts:
                raise ValueError(
                    f"slot {ref.slot} is free; acquire it before retaining"
                )
            self._refcounts[ref.slot] += 1
        return ref

    def release(self, ref: SlotRef) -> None:
        """Drop one reference; recycle the slot when the last one goes."""
        self._check_slot(ref)
        with self._lock:
            count = self._refcounts.get(ref.slot)
            if count is None:
                raise ValueError(f"slot {ref.slot} released twice")
            if count > 1:
                self._refcounts[ref.slot] = count - 1
                return
            del self._refcounts[ref.slot]
            self._free.append(ref.slot)

    def refcount(self, ref: SlotRef) -> int:
        """Current reader count of *ref*'s slot (0 when free)."""
        self._check_slot(ref)
        with self._lock:
            return self._refcounts.get(ref.slot, 0)

    def _check_slot(self, ref: SlotRef) -> None:
        if not (0 <= ref.slot < self.n_slots):
            raise ValueError(f"slot {ref.slot} outside pool of {self.n_slots}")

    def read(self, ref: SlotRef, copy: bool = True) -> np.ndarray:
        """The frame in *ref*'s slot; copied by default so the slot can be recycled."""
        view = self._slot_array(ref)
        return np.array(view) if copy else view

    def write(self, ref: SlotRef, frame: np.ndarray) -> SlotRef:
        """Write *frame* into *ref*'s slot.

        Called inside workers, on the pool object they inherited at fork
        time -- the slot buffer is the very memory the parent reads.
        """
        frame = np.asarray(frame)
        view = self._slot_array(ref)
        if frame.shape != view.shape:
            raise ValueError(f"frame {frame.shape} does not fit slot {view.shape}")
        view[...] = frame
        return ref

    def _slot_array(self, ref: SlotRef) -> np.ndarray:
        dtype = np.dtype(ref.dtype)
        slot_bytes = int(np.prod(ref.shape)) * dtype.itemsize
        offset = ref.slot * slot_bytes
        return np.ndarray(ref.shape, dtype=dtype, buffer=self._segment.buf, offset=offset)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap and destroy the segment (idempotent; parent side only)."""
        if self._closed:
            return
        self._closed = True
        self._segment.close()
        try:
            self._segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedFramePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
