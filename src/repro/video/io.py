"""Raw clip persistence.

Clips are stored as compressed ``.npz`` archives holding the frame stack
and frame rate -- no video codecs are available offline, and lossless
storage keeps experiments bit-reproducible.
"""

from __future__ import annotations

import os

import numpy as np

from repro.video.source import ArrayVideoSource, VideoSource

_FORMAT_VERSION = 1


def save_clip(path: str | os.PathLike, source: VideoSource) -> None:
    """Write every frame of *source* to a compressed ``.npz`` archive."""
    frames = np.stack(source.frames()).astype(np.float32)
    np.savez_compressed(
        os.fspath(path),
        frames=frames,
        fps=np.float64(source.fps),
        version=np.int64(_FORMAT_VERSION),
    )


def load_clip(path: str | os.PathLike) -> ArrayVideoSource:
    """Load a clip previously written by :func:`save_clip`."""
    with np.load(os.fspath(path)) as archive:
        if "frames" not in archive or "fps" not in archive:
            raise ValueError(f"{path!s} is not a clip archive (missing frames/fps)")
        version = int(archive["version"]) if "version" in archive else 0
        if version > _FORMAT_VERSION:
            raise ValueError(f"{path!s} uses clip format v{version}; this build reads <= v{_FORMAT_VERSION}")
        frames = archive["frames"]
        fps = float(archive["fps"])
    return ArrayVideoSource(frames, fps=fps)
