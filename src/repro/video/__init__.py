"""Video source substrate.

The paper evaluates with a pure gray video (RGB 127), a pure "dark gray"
video (RGB 180, values as printed in the paper) and a sun-rising clip.
Those inputs are reproduced here as deterministic synthetic generators, plus
extra content classes (noise, moving bars, gradients) used by the tests and
ablations to stress luminance extremes, texture and motion.
"""

from repro.video.source import (
    ArrayVideoSource,
    ConstantVideoSource,
    FunctionVideoSource,
    VideoSource,
)
from repro.video.synthetic import (
    checker_texture_video,
    gradient_video,
    moving_bars_video,
    noise_video,
    pure_color_video,
    rgb_color_video,
    rgb_sunrise_video,
    sunrise_video,
)
from repro.video.io import load_clip, save_clip

__all__ = [
    "VideoSource",
    "ArrayVideoSource",
    "ConstantVideoSource",
    "FunctionVideoSource",
    "pure_color_video",
    "gradient_video",
    "noise_video",
    "moving_bars_video",
    "checker_texture_video",
    "sunrise_video",
    "rgb_color_video",
    "rgb_sunrise_video",
    "load_clip",
    "save_clip",
]
