"""Video source abstractions.

A :class:`VideoSource` serves pixel-value frames (float32, [0, 255]) at a
fixed content frame rate -- grayscale ``(h, w)`` or RGB ``(h, w, 3)``
(``channels`` says which).  The multiplexer duplicates each content frame
``refresh_hz / fps`` times, exactly as the paper duplicates a 30 FPS video
four times on a 120 Hz panel.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro._util import check_frame, check_positive, check_positive_int


class VideoSource:
    """Base class for video sources.

    Subclasses implement :meth:`frame`; the base class provides shape
    bookkeeping and iteration helpers.

    Parameters
    ----------
    height, width:
        Frame geometry in pixels.
    fps:
        Content frame rate (frames per second).
    n_frames:
        Total number of content frames the source can serve.
    """

    def __init__(
        self, height: int, width: int, fps: float, n_frames: int, channels: int = 1
    ) -> None:
        self.height = check_positive_int(height, "height")
        self.width = check_positive_int(width, "width")
        self.fps = check_positive(fps, "fps")
        self.n_frames = check_positive_int(n_frames, "n_frames")
        if channels not in (1, 3):
            raise ValueError(f"channels must be 1 (grayscale) or 3 (RGB), got {channels}")
        self.channels = channels

    @property
    def shape(self) -> tuple[int, ...]:
        """Frame shape: ``(height, width)`` or ``(height, width, 3)``."""
        if self.channels == 3:
            return (self.height, self.width, 3)
        return (self.height, self.width)

    @property
    def duration_s(self) -> float:
        """Clip duration in seconds."""
        return self.n_frames / self.fps

    def frame(self, index: int) -> np.ndarray:
        """Return content frame *index* (float32 pixel values in [0, 255])."""
        raise NotImplementedError

    def _check_index(self, index: int) -> int:
        if not (0 <= index < self.n_frames):
            raise IndexError(f"frame index {index} outside [0, {self.n_frames})")
        return int(index)

    def frames(self) -> "list[np.ndarray]":
        """Materialise every frame (convenience for small test clips)."""
        return [self.frame(i) for i in range(self.n_frames)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.height}x{self.width}, fps={self.fps}, "
            f"n_frames={self.n_frames})"
        )


class ConstantVideoSource(VideoSource):
    """A pure-colour clip: every frame is the same uniform value.

    The paper uses these ("for its ease to detect any visual artifact") with
    gray levels 127 and 180.
    """

    def __init__(
        self,
        height: int,
        width: int,
        value: float,
        fps: float = 30.0,
        n_frames: int = 30,
    ) -> None:
        super().__init__(height, width, fps, n_frames)
        if not (0.0 <= value <= 255.0):
            raise ValueError(f"value must be in [0, 255], got {value}")
        self.value = float(value)
        self._frame = np.full(self.shape, np.float32(value), dtype=np.float32)

    def frame(self, index: int) -> np.ndarray:
        self._check_index(index)
        return self._frame


class ArrayVideoSource(VideoSource):
    """A clip backed by an in-memory ``(n, h, w)`` or ``(n, h, w, 3)`` array."""

    def __init__(self, frames: np.ndarray, fps: float = 30.0) -> None:
        arr = np.asarray(frames)
        if arr.ndim not in (3, 4) or (arr.ndim == 4 and arr.shape[3] != 3):
            raise ValueError(f"frames must be (n, h, w) or (n, h, w, 3), got shape {arr.shape}")
        checked = np.stack([check_frame(f, f"frames[{i}]") for i, f in enumerate(arr)])
        super().__init__(
            checked.shape[1],
            checked.shape[2],
            fps,
            checked.shape[0],
            channels=3 if arr.ndim == 4 else 1,
        )
        self._frames = checked

    def frame(self, index: int) -> np.ndarray:
        return self._frames[self._check_index(index)]


class LoopingVideoSource(VideoSource):
    """A clip replayed end to end *n_loops* times.

    Digital signage plays its content on a loop; the broadcast carousel
    rides on that repetition (``repro.serve``).  Looping keeps the frame
    stream exactly periodic -- frame ``i`` equals frame ``i mod base
    frames`` bit for bit -- which is what lets a render cache keyed on
    ``index mod period`` serve the whole session.
    """

    def __init__(self, base: VideoSource, n_loops: int) -> None:
        check_positive_int(n_loops, "n_loops")
        super().__init__(
            base.height,
            base.width,
            base.fps,
            base.n_frames * n_loops,
            channels=base.channels,
        )
        self.base = base
        self.n_loops = int(n_loops)

    def frame(self, index: int) -> np.ndarray:
        return self.base.frame(self._check_index(index) % self.base.n_frames)


class FunctionVideoSource(VideoSource):
    """A clip generated on demand by ``render(index) -> frame``.

    Frames are validated and cached (most recently used only), which is
    enough for the forward-moving access pattern of the display timeline.
    """

    def __init__(
        self,
        height: int,
        width: int,
        render: Callable[[int], np.ndarray],
        fps: float = 30.0,
        n_frames: int = 30,
        channels: int = 1,
    ) -> None:
        super().__init__(height, width, fps, n_frames, channels=channels)
        self._render = render
        self._cache_index = -1
        self._cache_frame: np.ndarray | None = None

    def frame(self, index: int) -> np.ndarray:
        index = self._check_index(index)
        if index == self._cache_index and self._cache_frame is not None:
            return self._cache_frame
        frame = check_frame(self._render(index), f"render({index})")
        if frame.shape != self.shape:
            raise ValueError(
                f"render({index}) returned shape {frame.shape}, expected {self.shape}"
            )
        self._cache_index = index
        self._cache_frame = frame
        return frame
