"""Deterministic synthetic clips.

Everything here is procedural and seeded, so every experiment re-runs
bit-identically.  The sunrise clip stands in for the paper's "normal
sun-rising video clip": it combines the three content properties that
matter to the channel -- a smooth luminance gradient (sky), a moving bright
object (the sun disc) and a textured region (foreground ripples) that
stresses the decoder's mean-|difference| correction.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_in_range, check_positive_int
from repro.video.source import ConstantVideoSource, FunctionVideoSource, VideoSource

#: Seed-domain tag separating film-grain draws from base-noise draws.
_GRAIN_DOMAIN = 0xF11A


def frame_rng(seed: int, index: int, domain: int | None = None) -> np.random.Generator:
    """The generator for one content frame of a clip.

    Every random draw in this module flows through a generator built
    here, seeded by ``(seed, index[, domain])`` -- frames are independent
    streams, so rendering frame 40 never requires drawing frames 0..39
    first (random access stays cheap and parallel rendering stays
    bit-identical to serial).
    """
    key = (seed, index) if domain is None else (seed, index, domain)
    return np.random.default_rng(key)


def _gaussian_field(
    rng: np.random.Generator, mean: float, std: float, shape: tuple[int, int]
) -> np.ndarray:
    """One Gaussian noise field drawn from an explicitly threaded generator."""
    return rng.normal(mean, std, size=shape)


def pure_color_video(
    height: int,
    width: int,
    value: float,
    fps: float = 30.0,
    n_frames: int = 30,
) -> ConstantVideoSource:
    """The paper's pure-colour test clip (e.g. gray 127, "dark gray" 180)."""
    return ConstantVideoSource(height, width, value, fps=fps, n_frames=n_frames)


def gradient_video(
    height: int,
    width: int,
    low: float = 0.0,
    high: float = 255.0,
    fps: float = 30.0,
    n_frames: int = 30,
    horizontal: bool = True,
) -> VideoSource:
    """A static linear gradient covering [low, high]; exercises clipping."""
    check_in_range(low, "low", 0.0, 255.0)
    check_in_range(high, "high", 0.0, 255.0)
    if horizontal:
        ramp = np.linspace(low, high, width, dtype=np.float32)[None, :]
        frame = np.broadcast_to(ramp, (height, width)).copy()
    else:
        ramp = np.linspace(low, high, height, dtype=np.float32)[:, None]
        frame = np.broadcast_to(ramp, (height, width)).copy()
    return FunctionVideoSource(height, width, lambda index: frame, fps=fps, n_frames=n_frames)


def noise_video(
    height: int,
    width: int,
    mean: float = 127.0,
    std: float = 30.0,
    fps: float = 30.0,
    n_frames: int = 30,
    seed: int = 0,
    static: bool = False,
) -> VideoSource:
    """Gaussian-noise texture; the hardest content for the induced-noise decoder.

    With ``static=True`` the same noise field is used in every frame
    (texture without motion); otherwise each content frame is fresh noise.
    """
    base_rng = np.random.default_rng(seed)
    static_field = (
        _gaussian_field(base_rng, mean, std, (height, width)) if static else None
    )

    def render(index: int) -> np.ndarray:
        if static_field is not None:
            field = static_field
        else:
            field = _gaussian_field(frame_rng(seed, index), mean, std, (height, width))
        return np.clip(field, 0.0, 255.0).astype(np.float32)

    return FunctionVideoSource(height, width, render, fps=fps, n_frames=n_frames)


def moving_bars_video(
    height: int,
    width: int,
    bar_width: int = 40,
    speed_px_per_frame: float = 6.0,
    low: float = 60.0,
    high: float = 200.0,
    fps: float = 30.0,
    n_frames: int = 30,
) -> VideoSource:
    """Vertical bars sweeping horizontally; motion stress for the decoder."""
    check_positive_int(bar_width, "bar_width")
    cols = np.arange(width, dtype=np.float32)

    def render(index: int) -> np.ndarray:
        phase = (cols + index * speed_px_per_frame) % (2 * bar_width)
        row = np.where(phase < bar_width, np.float32(high), np.float32(low))
        return np.broadcast_to(row[None, :], (height, width)).copy()

    return FunctionVideoSource(height, width, render, fps=fps, n_frames=n_frames)


def checker_texture_video(
    height: int,
    width: int,
    cell: int = 3,
    low: float = 90.0,
    high: float = 165.0,
    fps: float = 30.0,
    n_frames: int = 30,
) -> VideoSource:
    """A static fine checkerboard texture.

    Adversarial content: its spatial spectrum resembles the data chessboard,
    which is exactly the case the paper's mean-|difference| correction is
    designed to survive.
    """
    check_positive_int(cell, "cell")
    rows = (np.arange(height) // cell)[:, None]
    cols = (np.arange(width) // cell)[None, :]
    frame = np.where((rows + cols) % 2 == 0, np.float32(low), np.float32(high))
    frame = np.broadcast_to(frame, (height, width)).astype(np.float32).copy()
    return FunctionVideoSource(height, width, lambda index: frame, fps=fps, n_frames=n_frames)


def sunrise_video(
    height: int,
    width: int,
    fps: float = 30.0,
    n_frames: int = 30,
    seed: int = 7,
    grain_std: float = 8.0,
) -> VideoSource:
    """A procedural stand-in for the paper's sun-rising clip.

    Composition (all deterministic in *seed*):

    * sky: vertical gradient brightening from deep blue-gray toward the
      horizon, warming slowly over the clip;
    * sun: a bright disc with a soft halo rising from below the horizon --
      its core saturates, which (as in any real bright scene) leaves no
      amplitude headroom for the chessboard;
    * water: the lower third carries ripple texture (band-limited noise)
      with a slow horizontal drift and a sun glint column;
    * film grain: per-content-frame pixel noise of standard deviation
      *grain_std*, the fine texture that makes real video the hard case
      for the induced-noise decoder (paper Fig. 7's "Video" bars).
    """
    rng = np.random.default_rng(seed)
    horizon = int(height * 0.62)
    rows = np.arange(height, dtype=np.float32)[:, None]
    cols = np.arange(width, dtype=np.float32)[None, :]

    # Pre-generate a smooth ripple field (low-pass filtered noise) that the
    # water region samples with a per-frame drift.
    ripple = rng.normal(0.0, 1.0, size=(height, width + 64)).astype(np.float32)
    kernel = np.hanning(9).astype(np.float32)
    kernel /= kernel.sum()
    ripple = np.apply_along_axis(lambda m: np.convolve(m, kernel, mode="same"), 1, ripple)
    ripple = np.apply_along_axis(lambda m: np.convolve(m, kernel, mode="same"), 0, ripple)
    ripple /= max(float(np.abs(ripple).max()), 1e-6)

    def render(index: int) -> np.ndarray:
        progress = index / max(n_frames - 1, 1)
        # Sky: brightens toward the horizon and over time.
        sky_top = 40.0 + 30.0 * progress
        sky_horizon = 120.0 + 70.0 * progress
        sky = sky_top + (sky_horizon - sky_top) * np.clip(rows / max(horizon, 1), 0.0, 1.0)

        # Sun: rises from below the horizon to ~35% height; the disc core
        # saturates like a real sunrise shot.
        sun_row = horizon + 18.0 - (horizon * 0.45 + 18.0) * progress
        sun_col = width * 0.5
        sun_radius = max(min(height, width) * 0.08, 2.0)
        dist2 = (rows - sun_row) ** 2 + (cols - sun_col) ** 2
        disc = np.exp(-dist2 / (2.0 * sun_radius**2))
        halo = np.exp(-dist2 / (2.0 * (sun_radius * 4.0) ** 2))
        frame = sky + 260.0 * disc + 70.0 * halo

        # Water: darker, textured, drifting, with a glint under the sun.
        drift = int(index * 2) % 64
        water_texture = ripple[:, drift : drift + width]
        water_mask = rows >= horizon
        depth = np.clip((rows - horizon) / max(height - horizon, 1), 0.0, 1.0)
        water = (sky_horizon * 0.55 - 38.0 * depth) + 30.0 * water_texture
        glint_width = max(width * 0.02, 1.0)
        glint = 60.0 * progress * np.exp(-((cols - sun_col) ** 2) / (2.0 * glint_width**2))
        water = water + glint * (1.0 - depth)
        frame = np.where(water_mask, water, frame)

        # Film grain: fresh per content frame, like real camera footage.
        if grain_std > 0.0:
            grain = _gaussian_field(
                frame_rng(seed, index, _GRAIN_DOMAIN), 0.0, grain_std, (height, width)
            )
            frame = frame + grain
        return np.clip(frame, 0.0, 255.0).astype(np.float32)

    return FunctionVideoSource(height, width, render, fps=fps, n_frames=n_frames)


def rgb_color_video(
    height: int,
    width: int,
    color: tuple[float, float, float],
    fps: float = 30.0,
    n_frames: int = 30,
) -> VideoSource:
    """A pure-RGB-colour clip (e.g. the paper's (127,127,127) as a triple)."""
    values = np.asarray(color, dtype=np.float32)
    if values.shape != (3,) or values.min() < 0 or values.max() > 255:
        raise ValueError(f"color must be an RGB triple in [0, 255], got {color}")
    frame = np.broadcast_to(values, (height, width, 3)).astype(np.float32).copy()
    return FunctionVideoSource(
        height, width, lambda index: frame, fps=fps, n_frames=n_frames, channels=3
    )


def rgb_sunrise_video(
    height: int,
    width: int,
    fps: float = 30.0,
    n_frames: int = 30,
    seed: int = 7,
    grain_std: float = 8.0,
) -> VideoSource:
    """The sunrise clip in colour: blue-to-orange sky, golden sun, dark water.

    Built by colour-grading the grayscale :func:`sunrise_video` luminance
    with altitude-dependent channel gains, so its luminance structure (and
    therefore channel behaviour) matches the grayscale clip.
    """
    base = sunrise_video(height, width, fps=fps, n_frames=n_frames, seed=seed,
                         grain_std=grain_std)
    horizon = int(height * 0.62)
    rows = np.arange(height, dtype=np.float32)[:, None]
    # Channel gains: cool blue high in the sky, warm near the horizon,
    # desaturated teal in the water.
    sky_mix = np.clip(rows / max(horizon, 1), 0.0, 1.0)
    red = np.where(rows < horizon, 0.75 + 0.45 * sky_mix, 0.70)
    green = np.where(rows < horizon, 0.85 + 0.15 * sky_mix, 0.85)
    blue = np.where(rows < horizon, 1.25 - 0.45 * sky_mix, 1.05)
    gains = np.stack(
        [np.broadcast_to(c, (height, width)) for c in (red, green, blue)], axis=2
    ).astype(np.float32)

    def render(index: int) -> np.ndarray:
        gray = base.frame(index)
        return np.clip(gray[..., None] * gains, 0.0, 255.0).astype(np.float32)

    return FunctionVideoSource(
        height, width, render, fps=fps, n_frames=n_frames, channels=3
    )
