"""LSB steganography baseline.

The paper's related-work section distinguishes InFrame from steganography:
stego hides bits in the least-significant bits of pixel values, which is
invisible on-file *and* invisible to a camera -- the optical channel's
gamma, blur, resampling and noise obliterate sub-count modulations.  This
module implements classic LSB embedding/extraction so the benchmark can
demonstrate both halves: perfect recovery file-to-file, chance-level
recovery over the simulated screen-camera link.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_frame, check_positive_int


class LSBSteganography:
    """Embed/extract bits in the least-significant bits of a frame.

    Parameters
    ----------
    bits_per_pixel:
        How many low-order bitplanes to use (1 = classic LSB).
    """

    def __init__(self, bits_per_pixel: int = 1) -> None:
        self.bits_per_pixel = check_positive_int(bits_per_pixel, "bits_per_pixel")
        if self.bits_per_pixel > 4:
            raise ValueError("more than 4 bitplanes is visibly destructive")

    def capacity(self, frame_shape: tuple[int, int]) -> int:
        """Bits one frame can carry."""
        height, width = frame_shape
        return height * width * self.bits_per_pixel

    def embed(self, frame: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Return a copy of *frame* carrying *bits* in its low bitplanes.

        Bits fill pixels row-major, ``bits_per_pixel`` at a time (LSB
        first); unused capacity keeps the original low bits.
        """
        frame = check_frame(frame, "frame")
        bits = np.asarray(bits, dtype=bool).ravel()
        if bits.size > self.capacity(frame.shape):
            raise ValueError(
                f"{bits.size} bits exceed capacity {self.capacity(frame.shape)}"
            )
        values = np.clip(np.round(frame), 0, 255).astype(np.uint8).ravel()
        n_pixels = (bits.size + self.bits_per_pixel - 1) // self.bits_per_pixel
        padded = np.zeros(n_pixels * self.bits_per_pixel, dtype=bool)
        padded[: bits.size] = bits
        planes = padded.reshape(n_pixels, self.bits_per_pixel)
        mask = np.uint8((0xFF << self.bits_per_pixel) & 0xFF)
        payload = np.zeros(n_pixels, dtype=np.uint8)
        for plane in range(self.bits_per_pixel):
            payload |= planes[:, plane].astype(np.uint8) << plane
        values[:n_pixels] = (values[:n_pixels] & mask) | payload
        return values.reshape(frame.shape).astype(np.float32)

    def extract(self, frame: np.ndarray, n_bits: int) -> np.ndarray:
        """Read *n_bits* back out of a (possibly degraded) frame."""
        frame = np.asarray(frame, dtype=np.float32)
        values = np.clip(np.round(frame), 0, 255).astype(np.uint8).ravel()
        n_pixels = (n_bits + self.bits_per_pixel - 1) // self.bits_per_pixel
        if n_pixels > values.size:
            raise ValueError(f"frame too small for {n_bits} bits")
        out = np.zeros(n_pixels * self.bits_per_pixel, dtype=bool)
        planes = out.reshape(n_pixels, self.bits_per_pixel)
        for plane in range(self.bits_per_pixel):
            planes[:, plane] = (values[:n_pixels] >> plane) & 1
        return out[:n_bits]

    @staticmethod
    def bit_error_rate(sent: np.ndarray, received: np.ndarray) -> float:
        """Fraction of mismatched bits (0.5 = chance for random data)."""
        sent = np.asarray(sent, dtype=bool).ravel()
        received = np.asarray(received, dtype=bool).ravel()
        if sent.size != received.size:
            raise ValueError(f"length mismatch: {sent.size} vs {received.size}")
        if sent.size == 0:
            raise ValueError("empty bit vectors")
        return float(np.mean(sent != received))
