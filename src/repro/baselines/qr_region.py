"""The visible dynamic-barcode region baseline.

This is the practice InFrame's introduction argues against: reserve a
corner of the display for a black-and-white dynamic barcode and refresh it
once per video frame.  The user loses that screen area (the "contention"
the paper names); the device gets an easy high-contrast signal.

The implementation reuses the screen->camera substrates end to end, so the
comparison with InFrame is apples-to-apples: same panel, same camera, same
decoder philosophy (threshold block intensities), different use of the
display surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_fraction, check_positive_int
from repro.camera.capture import CapturedFrame
from repro.video.source import VideoSource


@dataclass(frozen=True)
class QRRegionLayout:
    """Placement and structure of the barcode region.

    Attributes
    ----------
    area_fraction:
        Fraction of the display area the barcode occupies (bottom-right
        square); the paper notes real QR codes "only take a small area".
    cells:
        Barcode side length in cells; each cell carries one bit.
    refresh_divider:
        Barcode changes every ``refresh_divider`` video frames (dynamic
        barcodes are limited by capture rate, typically 10-15 Hz).
    """

    area_fraction: float = 0.1
    cells: int = 30
    refresh_divider: int = 2

    def __post_init__(self) -> None:
        check_fraction(self.area_fraction, "area_fraction")
        check_positive_int(self.cells, "cells")
        check_positive_int(self.refresh_divider, "refresh_divider")


class QRRegionScheme:
    """Video with a visible dynamic barcode region (FrameSource protocol).

    Parameters
    ----------
    video:
        The primary content (gets partially covered).
    layout:
        Barcode geometry and refresh policy.
    refresh_per_video_frame:
        Display refreshes per video frame (4 on the paper's setup).
    seed:
        Barcode payload generator seed.
    """

    def __init__(
        self,
        video: VideoSource,
        layout: QRRegionLayout | None = None,
        refresh_per_video_frame: int = 4,
        seed: int = 99,
    ) -> None:
        self.video = video
        self.layout = layout if layout is not None else QRRegionLayout()
        self.refresh_per_video_frame = check_positive_int(
            refresh_per_video_frame, "refresh_per_video_frame"
        )
        self.seed = int(seed)
        side = int(np.sqrt(self.layout.area_fraction * video.height * video.width))
        side = max(side, self.layout.cells)
        self.region_side = min(side, video.height, video.width)
        self.cell_px = max(self.region_side // self.layout.cells, 1)
        self.region_side = self.cell_px * self.layout.cells
        self._n_frames = video.n_frames * self.refresh_per_video_frame

    # ------------------------------------------------------------------
    # FrameSource protocol
    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        """Display frames in the stream."""
        return self._n_frames

    def frame(self, index: int) -> np.ndarray:
        """Video frame with the current barcode composited bottom-right."""
        if not (0 <= index < self._n_frames):
            raise IndexError(f"frame index {index} outside [0, {self._n_frames})")
        video_frame = self.video.frame(index // self.refresh_per_video_frame).copy()
        code = self.barcode(self.barcode_index(index))
        field = np.kron(code.astype(np.float32) * 255.0, np.ones((self.cell_px, self.cell_px), np.float32))
        video_frame[-self.region_side :, -self.region_side :] = field
        return video_frame

    # ------------------------------------------------------------------
    # Payload
    # ------------------------------------------------------------------
    def barcode_index(self, display_index: int) -> int:
        """Which barcode is on screen at the given display frame."""
        video_index = display_index // self.refresh_per_video_frame
        return video_index // self.layout.refresh_divider

    def barcode(self, barcode_index: int) -> np.ndarray:
        """The bit matrix of barcode *barcode_index* (bool, cells x cells)."""
        rng = np.random.default_rng((self.seed, barcode_index))
        return rng.random((self.layout.cells, self.layout.cells)) < 0.5

    @property
    def bits_per_barcode(self) -> int:
        """Raw bits carried per barcode."""
        return self.layout.cells**2

    def raw_bit_rate_bps(self, video_fps: float = 30.0) -> float:
        """Raw data rate of the visible barcode channel."""
        barcodes_per_second = video_fps / self.layout.refresh_divider
        return self.bits_per_barcode * barcodes_per_second

    def occluded_fraction(self) -> float:
        """Fraction of display pixels the user loses to the barcode."""
        return (self.region_side**2) / (self.video.height * self.video.width)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_capture(self, capture: CapturedFrame, camera_shape: tuple[int, int]) -> np.ndarray:
        """Recover the barcode bits from one captured frame.

        Cells are averaged in camera coordinates and thresholded at the
        region's median -- visible black/white cells need nothing fancier.
        """
        cam_h, cam_w = camera_shape
        sy = cam_h / self.video.height
        sx = cam_w / self.video.width
        top = (self.video.height - self.region_side) * sy
        left = (self.video.width - self.region_side) * sx
        cell_h = self.cell_px * sy
        cell_w = self.cell_px * sx
        if cell_h < 2 or cell_w < 2:
            raise ValueError("captured barcode region too small to decode")
        cells = self.layout.cells
        means = np.empty((cells, cells))
        for i in range(cells):
            for j in range(cells):
                # Sample each cell's core individually so sub-pixel scale
                # error cannot accumulate across the code.
                r0 = int(round(top + (i + 0.25) * cell_h))
                r1 = max(int(round(top + (i + 0.75) * cell_h)), r0 + 1)
                c0 = int(round(left + (j + 0.25) * cell_w))
                c1 = max(int(round(left + (j + 0.75) * cell_w)), c0 + 1)
                means[i, j] = capture.pixels[r0 : min(r1, cam_h), c0 : min(c1, cam_w)].mean()
        return means > np.median(means)
