"""HiLight-style translucency keying (simplified, grayscale).

The paper's related work cites HiLight ("conveys data bits by adjusting
the hues of the image") among unobtrusive screen-camera schemes.  The
grayscale analogue keys each Block with a small *uniform* luminance offset
(+a for 1, -a for 0) alternating at the complementary rate, instead of
InFrame's spatial chessboard.

The interesting comparison: a uniform offset has *no* high-spatial-
frequency signature, so the induced-noise detector cannot see it; the
receiver must instead difference complementary capture pairs, which is far
more sensitive to content motion and rolling shutter.  The benchmark
quantifies that gap.
"""

from __future__ import annotations

import numpy as np

from repro.camera.capture import CapturedFrame
from repro.core.config import InFrameConfig
from repro.core.geometry import FrameGeometry
from repro.core.multiplexer import DataFrameSchedule
from repro.video.source import VideoSource


class HueShiftScheme:
    """Uniform-offset Block keying stream (FrameSource protocol).

    Parameters
    ----------
    config:
        Reused for grid geometry, tau and clock rates; ``amplitude`` is the
        uniform offset (HiLight-class schemes use very small offsets to
        stay unobtrusive -- a few levels).
    video, schedule:
        Content and data supplier, as for the InFrame multiplexer.
    """

    def __init__(
        self,
        config: InFrameConfig,
        video: VideoSource,
        schedule: DataFrameSchedule,
    ) -> None:
        self.config = config
        self.video = video
        self.schedule = schedule
        self.geometry = FrameGeometry(config, video.height, video.width)
        self._n_frames = video.n_frames * config.frame_duplication

    @property
    def n_frames(self) -> int:
        """Display frames in the stream."""
        return self._n_frames

    def frame(self, index: int) -> np.ndarray:
        """Video plus the signed uniform Block offsets."""
        if not (0 <= index < self._n_frames):
            raise IndexError(f"frame index {index} outside [0, {self._n_frames})")
        video_frame = self.video.frame(index // self.config.frame_duplication)
        data_index = index // self.config.tau
        bits = np.asarray(self.schedule.bits(data_index), dtype=bool)
        signed = np.where(bits, 1.0, -1.0).astype(np.float32)
        field = self.geometry.expand_block_grid(signed)
        sign = np.float32(1.0 if index % 2 == 0 else -1.0)
        offset = sign * np.float32(self.config.amplitude) * field
        return np.clip(video_frame + offset, 0.0, 255.0).astype(np.float32)

    # ------------------------------------------------------------------
    # Decoding: complementary pair differencing
    # ------------------------------------------------------------------
    def decode_pair(
        self,
        capture_a: CapturedFrame,
        capture_b: CapturedFrame,
        camera_shape: tuple[int, int],
        inset: float = 0.2,
    ) -> np.ndarray:
        """Recover Block bits from two captures of opposite carrier sign.

        Returns the per-Block signed difference means; positive means bit 1
        under the convention that *capture_a* saw the ``+`` phase.
        """
        cam_h, cam_w = camera_shape
        labels = self.geometry.camera_block_index_maps(cam_h, cam_w, inset)
        valid = labels >= 0
        diff = capture_a.pixels.astype(np.float64) - capture_b.pixels.astype(np.float64)
        n_blocks = self.config.block_rows * self.config.block_cols
        counts = np.bincount(labels[valid], minlength=n_blocks).astype(np.float64)
        sums = np.bincount(labels[valid], weights=diff[valid], minlength=n_blocks)
        means = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
        return means.reshape(self.config.block_rows, self.config.block_cols)
