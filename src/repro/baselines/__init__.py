"""Comparison systems.

Four reference points frame InFrame's contribution:

* :mod:`repro.baselines.naive` -- the paper's own Figure 3 naive designs
  (insert raw data frames between video frames); they fail the CFF
  constraint and flicker badly, which motivates complementary frames;
* :mod:`repro.baselines.qr_region` -- the status quo the introduction
  argues against: a visible dynamic barcode occupying part of the screen,
  trading display area for data;
* :mod:`repro.baselines.lsb_stego` -- classic LSB steganography; invisible
  on-file but unrecoverable over the optical screen-camera channel, which
  is why InFrame is not "just steganography" (paper Section 6);
* :mod:`repro.baselines.hue_shift` -- a simplified HiLight-style scheme
  keying small uniform luminance offsets per block (translucency change)
  instead of a chessboard.
"""

from repro.baselines.hue_shift import HueShiftScheme
from repro.baselines.lsb_stego import LSBSteganography
from repro.baselines.naive import NaiveDesign, NaiveScheme
from repro.baselines.qr_region import QRRegionScheme

__all__ = [
    "NaiveDesign",
    "NaiveScheme",
    "QRRegionScheme",
    "LSBSteganography",
    "HueShiftScheme",
]
