"""The paper's Figure 3 naive designs.

Before arriving at complementary frames, the authors tried inserting raw
data frames directly into the refresh sequence:

* ``AGGRESSIVE`` (Fig. 3c) -- ``V D1 D2 D3``: three distinct data frames
  after each video frame;
* ``INTERLEAVED`` (Fig. 3d) -- ``V D V D``: video and data alternate;
* ``RATIO_2_2`` -- ``V V D D``;
* ``RATIO_3_1`` -- ``V V V D``.

All failed with "severe flickers ... because the average of sequential
data frames did not match that of original video frames".  The streams
built here feed the HVS model to regenerate that comparison.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.config import InFrameConfig
from repro.core.geometry import FrameGeometry
from repro.core.multiplexer import DataFrameSchedule
from repro.video.source import VideoSource


class NaiveDesign(Enum):
    """The frame-insertion patterns of the paper's Figure 3."""

    AGGRESSIVE = "V D1 D2 D3"
    INTERLEAVED = "V D V D"
    RATIO_2_2 = "V V D D"
    RATIO_3_1 = "V V V D"

    @property
    def pattern(self) -> str:
        """Slot pattern over one video-frame period: 'V' or 'D' per refresh."""
        return {
            NaiveDesign.AGGRESSIVE: "VDDD",
            NaiveDesign.INTERLEAVED: "VDVD",
            NaiveDesign.RATIO_2_2: "VVDD",
            NaiveDesign.RATIO_3_1: "VVVD",
        }[self]

    @property
    def data_slots_per_period(self) -> int:
        """Data frames shown per video-frame period."""
        return self.pattern.count("D")


class NaiveScheme:
    """A naive multiplexed stream (implements the FrameSource protocol).

    Data frames are rendered as semi-transparent barcode overlays: Block
    (r, c) of the data grid is set to ``video +/- amplitude`` depending on
    its bit, with no complementarity -- exactly the "dynamic
    semi-transparent data blocks" the paper's user study saw.

    Parameters
    ----------
    config:
        Reused for the Block grid geometry and amplitude.
    video:
        The primary content.
    schedule:
        Bit supplier; each displayed data slot consumes a new data frame.
    design:
        Which Figure 3 insertion pattern to build.
    """

    def __init__(
        self,
        config: InFrameConfig,
        video: VideoSource,
        schedule: DataFrameSchedule,
        design: NaiveDesign = NaiveDesign.INTERLEAVED,
    ) -> None:
        self.config = config
        self.video = video
        self.schedule = schedule
        self.design = design
        self.geometry = FrameGeometry(config, video.height, video.width)
        self._pattern = design.pattern
        duplication = config.frame_duplication
        if duplication != len(self._pattern):
            raise ValueError(
                f"naive designs assume refresh/fps == {len(self._pattern)} slots, "
                f"got {duplication}"
            )
        self._n_frames = video.n_frames * duplication

    @property
    def n_frames(self) -> int:
        """Display frames in the stream."""
        return self._n_frames

    def frame(self, index: int) -> np.ndarray:
        """Render displayed frame *index*."""
        if not (0 <= index < self._n_frames):
            raise IndexError(f"frame index {index} outside [0, {self._n_frames})")
        period = len(self._pattern)
        video_index, slot = divmod(index, period)
        video_frame = self.video.frame(video_index)
        if self._pattern[slot] == "V":
            return video_frame
        data_index = self._data_index(video_index, slot)
        bits = np.asarray(self.schedule.bits(data_index), dtype=bool)
        signed = np.where(bits, 1.0, -1.0).astype(np.float32)
        field = self.geometry.expand_block_grid(signed)
        return np.clip(
            video_frame + np.float32(self.config.amplitude) * field, 0.0, 255.0
        ).astype(np.float32)

    def _data_index(self, video_index: int, slot: int) -> int:
        """Sequential index of the data frame shown in this slot."""
        slots_before = self._pattern[:slot].count("D")
        return video_index * self.design.data_slots_per_period + slots_before
