"""Internal utilities shared across the :mod:`repro` subpackages.

Nothing in here is part of the public API; import from the relevant
subpackage instead.
"""

from repro._util.seeding import stable_seed
from repro._util.validation import (
    check_fraction,
    check_frame,
    check_in_range,
    check_positive,
    check_positive_int,
)

__all__ = [
    "check_fraction",
    "check_frame",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "stable_seed",
]
