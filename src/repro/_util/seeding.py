"""Process-stable seed derivation.

The builtin ``hash()`` is salted per process for ``str`` (and anything
containing one), so seeds derived from it differ between runs and break
``workers=N`` bit-identity replays.  :func:`stable_seed` digests the
``repr`` of its parts with SHA-256 instead, which is identical across
processes, platforms and Python versions for the builtin scalar types
used as experiment keys.
"""

from __future__ import annotations

import hashlib


def stable_seed(*parts: object) -> int:
    """A deterministic 32-bit seed derived from *parts*.

    Unlike ``hash()``, the result does not depend on ``PYTHONHASHSEED``:
    equal reprs give equal seeds in every process.  Intended for
    namespacing experiment RNG streams by configuration values.
    """
    if not parts:
        raise ValueError("stable_seed needs at least one part")
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")
