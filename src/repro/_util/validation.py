"""Argument-validation helpers.

All validators raise :class:`ValueError` (or :class:`TypeError` for wrong
types) with messages that name the offending parameter, so call sites can
stay one line long.
"""

from __future__ import annotations

import numbers

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Return *value* if it is a finite number > 0, else raise ValueError."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Return *value* if it is an integer >= 1, else raise ValueError."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Return *value* if low <= value <= high, else raise ValueError."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Return *value* if it lies in [0, 1], else raise ValueError."""
    return check_in_range(value, name, 0.0, 1.0)


def check_frame(frame: np.ndarray, name: str = "frame") -> np.ndarray:
    """Validate a pixel-value frame and return it as float32.

    A frame is a 2-D (grayscale) or 3-D (``(h, w, channels)``) array of
    pixel values in the 8-bit range [0, 255].  Values slightly outside the
    range (e.g. from float rounding) are rejected rather than clipped so
    that range bugs surface early.
    """
    arr = np.asarray(frame)
    if arr.ndim not in (2, 3):
        raise ValueError(f"{name} must be 2-D or 3-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.number):
        raise TypeError(f"{name} must be numeric, got dtype {arr.dtype}")
    arr = arr.astype(np.float32, copy=False)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    lo, hi = float(arr.min()), float(arr.max())
    if lo < -1e-3 or hi > 255.0 + 1e-3:
        raise ValueError(f"{name} values must be in [0, 255], got [{lo}, {hi}]")
    return arr
