"""Experiment definitions: scales, conditions and paper reference values.

Each benchmark file calls one ``run_*`` function here and prints the
result next to the corresponding ``PAPER_*`` reference.  Experiments run
at a reduced :class:`ExperimentScale` by default -- the Block *grid* (and
therefore every rate) matches the paper exactly, the Block pixel footprint
is smaller (see ``InFrameConfig.scaled``), and the camera keeps the
paper's 2/3 resolution ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import stable_seed
from repro.camera.capture import CameraModel
from repro.core.config import InFrameConfig
from repro.core.pipeline import LinkRun, run_link
from repro.core.metrics import LinkStats
from repro.display.scheduler import DisplayTimeline
from repro.core.pipeline import InFrameSender
from repro.analysis.userstudy import PanelResult, SimulatedPanel
from repro.video.source import VideoSource
from repro.video.synthetic import pure_color_video, sunrise_video


# ----------------------------------------------------------------------
# Scales
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentScale:
    """Spatial scale of a link experiment.

    Attributes
    ----------
    video_height, video_width:
        Display/video resolution.
    config_scale:
        Factor handed to ``InFrameConfig.scaled`` (shrinks Block side).
    camera_height, camera_width:
        Capture resolution (the paper's ratio is 2/3 of the panel).
    n_video_frames:
        Content frames per run (30 FPS).
    """

    video_height: int = 540
    video_width: int = 960
    config_scale: float = 0.45
    camera_height: int = 360
    camera_width: int = 640
    n_video_frames: int = 36

    @staticmethod
    def benchmark() -> "ExperimentScale":
        """The default reduced scale used by the benchmark suite."""
        return ExperimentScale()

    @staticmethod
    def full() -> "ExperimentScale":
        """The paper's full scale (1920x1080 panel, 1280x720 capture)."""
        return ExperimentScale(
            video_height=1080,
            video_width=1920,
            config_scale=1.0,
            camera_height=720,
            camera_width=1280,
            n_video_frames=36,
        )

    @staticmethod
    def quick() -> "ExperimentScale":
        """A fast scale for tests (few data frames, small panel)."""
        return ExperimentScale(
            video_height=270,
            video_width=480,
            config_scale=0.25,
            camera_height=180,
            camera_width=320,
            n_video_frames=24,
        )

    def config(self, **overrides) -> InFrameConfig:
        """The scaled InFrame config, with optional field overrides."""
        return InFrameConfig(**overrides).scaled(self.config_scale)

    def camera(self) -> CameraModel:
        """The capture device for this scale."""
        return CameraModel(width=self.camera_width, height=self.camera_height)

    def video(self, name: str) -> VideoSource:
        """One of the paper's three input videos by name."""
        if name == "gray":
            return pure_color_video(
                self.video_height, self.video_width, 127.0, n_frames=self.n_video_frames
            )
        if name == "dark-gray":
            # RGB (180, 180, 180), the value printed in the paper.
            return pure_color_video(
                self.video_height, self.video_width, 180.0, n_frames=self.n_video_frames
            )
        if name == "video":
            return sunrise_video(
                self.video_height, self.video_width, n_frames=self.n_video_frames
            )
        raise ValueError(f"unknown video {name!r} (use gray, dark-gray, video)")


# ----------------------------------------------------------------------
# Figure 7: throughput / available GOBs / error rates
# ----------------------------------------------------------------------
#: The paper's Figure 7 numbers.  Throughput in kbps per (video, delta,
#: tau); availability/error pairs are only printed for tau = 12 in the
#: paper.  The caption's available/error labels for delta = 30 are
#: slightly ambiguous in the text layout; the mapping below follows the
#: reading documented in DESIGN.md.
PAPER_FIG7: dict[str, dict] = {
    "gray": {
        "throughput_kbps": {(20, 10): 12.6, (20, 12): 10.5, (20, 14): 9.2, (30, 12): 10.9},
        "available": {(20, 12): 0.952, (30, 12): 0.979},
        "error": {(20, 12): 0.015, (30, 12): 0.007},
    },
    "dark-gray": {
        "throughput_kbps": {(20, 10): 12.8, (20, 12): 10.7, (20, 14): 9.2, (30, 12): 10.9},
        "available": {(20, 12): 0.962, (30, 12): 0.974},
        "error": {(20, 12): 0.014, (30, 12): 0.009},
    },
    "video": {
        "throughput_kbps": {(20, 10): 6.2, (20, 12): 5.6, (20, 14): 5.0, (30, 12): 7.0},
        "available": {(20, 12): 0.628, (30, 12): 0.685},
        "error": {(20, 12): 0.209, (30, 12): 0.0954},
    },
}


def fig7_conditions() -> list[tuple[str, float, int]]:
    """The (video, delta, tau) grid of the paper's Figure 7."""
    conditions = []
    for video in ("gray", "dark-gray", "video"):
        for delta, tau in ((20.0, 10), (20.0, 12), (20.0, 14), (30.0, 12)):
            conditions.append((video, delta, tau))
    return conditions


def run_fig7_condition(
    video_name: str,
    delta: float,
    tau: int,
    scale: ExperimentScale | None = None,
    seed: int = 1,
) -> LinkStats:
    """Run one Figure 7 cell end to end and return its link statistics."""
    scale = scale or ExperimentScale.benchmark()
    config = scale.config(amplitude=delta, tau=tau)
    run = run_link(
        config,
        scale.video(video_name),
        camera=scale.camera(),
        seed=seed,
    )
    return run.stats


def run_fig7_link(
    video_name: str,
    delta: float,
    tau: int,
    scale: ExperimentScale | None = None,
    seed: int = 1,
) -> LinkRun:
    """Like :func:`run_fig7_condition` but returns the whole run."""
    scale = scale or ExperimentScale.benchmark()
    config = scale.config(amplitude=delta, tau=tau)
    return run_link(config, scale.video(video_name), camera=scale.camera(), seed=seed)


# ----------------------------------------------------------------------
# Figure 6: flicker user study
# ----------------------------------------------------------------------
#: Approximate values digitised from the paper's Figure 6 (the text gives
#: no exact numbers; error bars are large).  Left panel: mean score vs
#: colour brightness for delta in {20, 50}.  Right panel: mean score vs
#: delta for tau in {10, 12, 14}.
PAPER_FIG6_LEFT: dict[int, dict[int, float]] = {
    20: {60: 0.2, 80: 0.25, 100: 0.3, 120: 0.35, 140: 0.45, 160: 0.55, 180: 0.6, 200: 0.7},
    50: {60: 0.6, 80: 0.7, 100: 0.85, 120: 1.0, 140: 1.1, 160: 1.25, 180: 1.4, 200: 1.55},
}
PAPER_FIG6_RIGHT: dict[int, dict[int, float]] = {
    10: {20: 0.45, 30: 1.0, 50: 1.9},
    12: {20: 0.4, 30: 0.8, 50: 1.6},
    14: {20: 0.3, 30: 0.6, 50: 1.3},
}

#: Geometry of the reduced-scale flicker stimulus: the Block grid is
#: trimmed so it tiles the small panel exactly.
FLICKER_PANEL = {"height": 240, "width": 400}


def flicker_config(delta: float, tau: int) -> InFrameConfig:
    """InFrame config used by the flicker-study stimuli."""
    return InFrameConfig(
        element_pixels=4,
        pixels_per_block=2,
        block_rows=28,
        block_cols=48,
        amplitude=delta,
        tau=tau,
    )


def flicker_timeline(
    delta: float, tau: int, brightness_value: float, n_video_frames: int = 30
) -> DisplayTimeline:
    """A multiplexed pure-colour stimulus for the user study."""
    height, width = FLICKER_PANEL["height"], FLICKER_PANEL["width"]
    config = flicker_config(delta, tau)
    video = pure_color_video(height, width, brightness_value, n_frames=n_video_frames)
    return InFrameSender(config, video).timeline()


def run_fig6_left(
    brightness_values: tuple[int, ...] = (60, 80, 100, 120, 140, 160, 180, 200),
    deltas: tuple[float, ...] = (20.0, 50.0),
    tau: int = 12,
    duration_s: float = 0.5,
    panel: SimulatedPanel | None = None,
) -> dict[tuple[float, int], PanelResult]:
    """Figure 6 left: flicker score vs colour brightness per delta."""
    panel = panel or SimulatedPanel()
    results: dict[tuple[float, int], PanelResult] = {}
    for delta in deltas:
        for value in brightness_values:
            timeline = flicker_timeline(delta, tau, float(value))
            results[(delta, value)] = panel.study(
                timeline, duration_s, stimulus_seed=stable_seed("fig6-left", delta, value)
            )
    return results


def run_fig6_right(
    deltas: tuple[float, ...] = (20.0, 30.0, 50.0),
    taus: tuple[int, ...] = (10, 12, 14),
    brightness_value: float = 127.0,
    duration_s: float = 0.5,
    panel: SimulatedPanel | None = None,
) -> dict[tuple[float, int], PanelResult]:
    """Figure 6 right: flicker score vs delta per tau."""
    panel = panel or SimulatedPanel()
    results: dict[tuple[float, int], PanelResult] = {}
    for delta in deltas:
        for tau in taus:
            timeline = flicker_timeline(delta, tau, brightness_value)
            results[(delta, tau)] = panel.study(
                timeline, duration_s, stimulus_seed=stable_seed("fig6-right", delta, tau)
            )
    return results


def expected_throughput_kbps(stats: LinkStats) -> float:
    """The paper's throughput accounting applied to measured ratios."""
    return stats.throughput_kbps


def rng_for(*key: object) -> np.random.Generator:
    """A deterministic generator namespaced by *key* (experiment hygiene).

    Seeds derive from :func:`repro._util.stable_seed`, never ``hash()``:
    str hashing is salted per process, which would give every worker its
    own stream and silently break ``workers=N`` bit-identity.
    """
    return np.random.default_rng(tuple(stable_seed(k) for k in key))
