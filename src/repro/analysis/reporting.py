"""Fixed-width table and series formatting for benchmark output.

The benchmarks print the same rows/series the paper's figures report;
these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Column widths adapt to content; numbers should be pre-formatted by the
    caller so precision stays experiment-controlled.
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    n_cols = max(len(row) for row in cells)
    for row in cells:
        row.extend([""] * (n_cols - len(row)))
    widths = [max(len(row[i]) for row in cells) for i in range(n_cols)]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series the way a figure's data table would."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    rows = [[str(x), str(y)] for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)


def paper_vs_measured(
    label: str,
    paper_value: float | None,
    measured_value: float,
    unit: str = "",
) -> str:
    """One comparison line: paper figure vs this reproduction."""
    measured = f"{measured_value:.2f}{unit}"
    if paper_value is None:
        return f"{label}: paper=n/a measured={measured}"
    ratio = measured_value / paper_value if paper_value else float("inf")
    return (
        f"{label}: paper={paper_value:.2f}{unit} measured={measured} "
        f"(x{ratio:.2f})"
    )
