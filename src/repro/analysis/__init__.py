"""Experiment harness: simulated user study, sweeps, and reporting.

Everything the benchmarks need to regenerate the paper's tables and
figures lives here, so a bench file is just "run the experiment, print the
table, assert the shape".
"""

from repro.analysis.reporting import format_table, format_series
from repro.analysis.userstudy import PanelResult, SimulatedPanel
from repro.analysis.experiments import (
    ExperimentScale,
    PAPER_FIG6_LEFT,
    PAPER_FIG6_RIGHT,
    PAPER_FIG7,
    fig7_conditions,
    run_fig6_left,
    run_fig6_right,
    run_fig7_condition,
)

__all__ = [
    "SimulatedPanel",
    "PanelResult",
    "format_table",
    "format_series",
    "ExperimentScale",
    "fig7_conditions",
    "run_fig7_condition",
    "run_fig6_left",
    "run_fig6_right",
    "PAPER_FIG7",
    "PAPER_FIG6_LEFT",
    "PAPER_FIG6_RIGHT",
]
