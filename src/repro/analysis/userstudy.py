"""The simulated 8-participant user study.

The paper recruited 8 participants (3 female, 5 male, 21-36, half wearing
glasses, including a designer and a video expert "more sensitive to video
quality"), showed original and multiplexed videos side by side, and asked
for integer flicker ratings 0-4.

:class:`SimulatedPanel` draws 8 seeded :class:`SubjectProfile`\\ s --
individual CFF offsets, contrast-sensitivity gains (two high-sensitivity
"experts"), rating biases -- scores a stimulus through the HVS model per
subject, adds rating noise, quantises to the integer scale, and reports
mean and standard deviation exactly as the paper's Figure 6 does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int
from repro.display.scheduler import DisplayTimeline
from repro.hvs.flicker import FlickerPredictor, SubjectProfile


@dataclass(frozen=True)
class PanelResult:
    """Aggregated ratings for one stimulus."""

    mean_score: float
    std_score: float
    scores: tuple[float, ...]
    model_score: float

    @property
    def satisfactory(self) -> bool:
        """Paper's criterion: 0 and 1 are satisfactory ratings."""
        return self.mean_score < 1.5


class SimulatedPanel:
    """An 8-subject rating panel with seeded individual differences.

    Parameters
    ----------
    n_subjects:
        Panel size (8 in the paper).
    n_experts:
        Subjects with elevated contrast sensitivity (the paper had two:
        a designer and a video expert).
    seed:
        Panel composition seed; a fixed seed reproduces the same "people"
        across experiments, like a real within-subjects study.
    predictor:
        The HVS scorer; defaults to paper-geometry settings.
    rating_noise:
        Standard deviation of per-rating response noise (before integer
        quantisation).
    """

    def __init__(
        self,
        n_subjects: int = 8,
        n_experts: int = 2,
        seed: int = 8,
        predictor: FlickerPredictor | None = None,
        rating_noise: float = 0.25,
    ) -> None:
        check_positive_int(n_subjects, "n_subjects")
        if not (0 <= n_experts <= n_subjects):
            raise ValueError(f"n_experts must be in [0, {n_subjects}], got {n_experts}")
        self.seed = int(seed)
        self.rating_noise = float(rating_noise)
        self.predictor = predictor if predictor is not None else FlickerPredictor()
        rng = np.random.default_rng(seed)
        self.subjects: list[SubjectProfile] = []
        for i in range(n_subjects):
            gain = float(np.exp(rng.normal(0.0, 0.22)))
            if i < n_experts:
                gain *= 1.35
            self.subjects.append(
                SubjectProfile(
                    cff_offset_hz=float(rng.normal(0.0, 2.5)),
                    sensitivity_gain=gain,
                    response_bias=float(rng.normal(0.0, 0.12)),
                )
            )

    def study(
        self,
        timeline: DisplayTimeline,
        duration_s: float | None = None,
        stimulus_seed: int = 0,
        reference: DisplayTimeline | None = None,
    ) -> PanelResult:
        """Rate one stimulus with the whole panel.

        The expensive waveform extraction runs once; each subject re-scores
        the shared waveforms with their own sensitivity parameters.  With a
        *reference* timeline (the original content), ratings reflect the
        perceived change, matching the paper's side-by-side protocol.
        """
        waveforms, sample_rate = self.predictor.region_waveforms(timeline, duration_s)
        if reference is not None:
            ref_waveforms, ref_rate = self.predictor.region_waveforms(reference, duration_s)
            if ref_waveforms.shape != waveforms.shape or ref_rate != sample_rate:
                raise ValueError("reference timeline must match the stimulus geometry")
            ref_means = ref_waveforms.mean(axis=2, keepdims=True)
            waveforms = waveforms - ref_waveforms + ref_means
        carrier_hz = timeline.panel.refresh_hz / 2.0
        # Score with the population-average subject for the model reference.
        base_report = self.predictor.report_from_waveforms(waveforms, sample_rate, carrier_hz)
        rng = np.random.default_rng((self.seed, stimulus_seed))
        scores = []
        for subject in self.subjects:
            report = self.predictor.report_from_waveforms(
                waveforms, sample_rate, carrier_hz, subject=subject
            )
            rating = report.score + float(rng.normal(0.0, self.rating_noise))
            scores.append(float(np.clip(np.round(rating), 0, 4)))
        values = np.asarray(scores)
        return PanelResult(
            mean_score=float(values.mean()),
            std_score=float(values.std()),
            scores=tuple(scores),
            model_score=base_report.score,
        )
