"""InFrame reproduction: dual-mode full-frame visible communication.

Reproduces Wang et al., "InFrame: Multiflexing Full-Frame Visible
Communication Channel for Humans and Devices" (HotNets-XIII, 2014): a
display shows video multiplexed with complementary data frames; humans
perceive only the video (flicker fusion), cameras decode the data.

Quickstart::

    from repro import InFrameConfig, run_link, sunrise_video

    config = InFrameConfig().scaled(0.5)
    video = sunrise_video(540, 960, n_frames=30)
    run = run_link(config, video)
    print(run.stats.row())

Subpackages: :mod:`repro.core` (the InFrame codec), :mod:`repro.display`,
:mod:`repro.camera`, :mod:`repro.hvs`, :mod:`repro.video`,
:mod:`repro.channel`, :mod:`repro.ecc`, :mod:`repro.baselines`,
:mod:`repro.analysis`.
"""

from repro.camera import CameraModel, CapturedFrame, PerspectiveView
from repro.core import (
    DataFrameEncoder,
    FrameGeometry,
    InFrameConfig,
    InFrameDecoder,
    InFrameReceiver,
    InFrameSender,
    LinkStats,
    MultiplexedStream,
    PayloadSchedule,
    PseudoRandomSchedule,
    ZeroSchedule,
    run_link,
    summarize_link,
)
from repro.display import DisplayPanel, DisplayTimeline, GammaCurve
from repro.hvs import FlickerPredictor, FlickerReport, SubjectProfile
from repro.video import (
    gradient_video,
    moving_bars_video,
    noise_video,
    pure_color_video,
    sunrise_video,
)

__version__ = "1.0.0"

__all__ = [
    "InFrameConfig",
    "InFrameSender",
    "InFrameReceiver",
    "InFrameDecoder",
    "DataFrameEncoder",
    "FrameGeometry",
    "MultiplexedStream",
    "PseudoRandomSchedule",
    "PayloadSchedule",
    "ZeroSchedule",
    "LinkStats",
    "summarize_link",
    "run_link",
    "DisplayPanel",
    "DisplayTimeline",
    "GammaCurve",
    "CameraModel",
    "CapturedFrame",
    "PerspectiveView",
    "FlickerPredictor",
    "FlickerReport",
    "SubjectProfile",
    "pure_color_video",
    "gradient_video",
    "noise_video",
    "moving_bars_video",
    "sunrise_video",
    "__version__",
]
