"""Resumable master/worker orchestration for the scenario matrix.

The sweep surface is a dense condition matrix -- parameter x faults x
heal x camera x workload, the way Revelio and DeepLight (PAPERS.md)
report results.  ``repro.campaign`` turns that matrix into one
resumable **campaign**:

* :mod:`~repro.campaign.spec` -- the declarative axis grammar
  (``parameter=tau:8,12,16|faults=none,drop:p=0.1|heal=on,off``) and its
  expansion into seed-stamped work units;
* :mod:`~repro.campaign.units` -- frozen :class:`WorkUnit` payloads and
  the executor that runs them through ``run_link`` /
  ``run_transport_link`` / ``run_fleet``;
* :mod:`~repro.campaign.journal` -- the append-only JSONL transition
  log that survives ``SIGKILL`` (torn final line tolerated);
* :mod:`~repro.campaign.queue` -- journal replay into lease-aware queue
  state (``--resume`` re-leases expired work, keeps recorded results);
* :mod:`~repro.campaign.master` -- the dispatch loop over
  :class:`~repro.runtime.engine.ExecutionEngine` workers;
* :mod:`~repro.campaign.supervise` -- lease heartbeats and the
  supervisor that extends slow leases and fences/reclaims stuck ones
  immediately (no wall-timeout wait);
* :mod:`~repro.campaign.chaos` -- seeded orchestration fault schedules
  (worker kill/stall, heartbeat drop/delay, journal append tears) and
  the harness asserting report byte-identity under them;
* :mod:`~repro.campaign.report` -- the exact-merge aggregated report,
  byte-identical at any worker count and across kill/resume histories.

The CLI lives in :mod:`repro.tools.campaign`
(``python -m repro.tools.campaign run/resume/status/report``), and
:mod:`repro.tools.sweep` is a thin single-axis front-end over the same
machinery.
"""

from repro.campaign.chaos import (
    ChaosSchedule,
    ChaosScheduleError,
    parse_chaos,
    run_chaos_campaign,
)
from repro.campaign.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    CampaignJournalError,
    JournalContents,
    compact_journal,
)
from repro.campaign.master import (
    CampaignMaster,
    CampaignOutcome,
    CampaignRunStats,
    journal_status,
    report_from_journal,
)
from repro.campaign.supervise import (
    LeaseHealth,
    SupervisePolicy,
    Supervisor,
    classify_lease,
)
from repro.campaign.queue import CampaignQueueError, QueueState, UnitState, UnitStatus
from repro.campaign.report import REPORT_FORMAT, CampaignReport, build_report
from repro.campaign.spec import (
    SWEEPABLE,
    Axis,
    CampaignSpec,
    CampaignSpecError,
    coerce_sweep_values,
    decode_faults_value,
    encode_faults_value,
)
from repro.campaign.units import UnitResult, WorkUnit, execute_unit

__all__ = [
    "ChaosSchedule",
    "ChaosScheduleError",
    "JOURNAL_FORMAT",
    "REPORT_FORMAT",
    "SWEEPABLE",
    "Axis",
    "CampaignJournal",
    "CampaignJournalError",
    "CampaignMaster",
    "CampaignOutcome",
    "CampaignQueueError",
    "CampaignReport",
    "CampaignRunStats",
    "CampaignSpec",
    "CampaignSpecError",
    "JournalContents",
    "LeaseHealth",
    "QueueState",
    "SupervisePolicy",
    "Supervisor",
    "UnitResult",
    "UnitState",
    "UnitStatus",
    "WorkUnit",
    "build_report",
    "classify_lease",
    "coerce_sweep_values",
    "compact_journal",
    "decode_faults_value",
    "encode_faults_value",
    "execute_unit",
    "journal_status",
    "parse_chaos",
    "report_from_journal",
    "run_chaos_campaign",
]
