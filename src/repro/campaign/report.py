"""The aggregated campaign report and its determinism contract.

:func:`build_report` folds the standing (first-recorded) result of every
unit into one :class:`CampaignReport`:

* **rows** -- one flat record per unit in canonical expansion order:
  the unit's key, workload, swept parameter assignments, and either its
  statistics row or its error text;
* **telemetry** -- every successful unit's :class:`~repro.obs.RunTelemetry`
  folded through the exact-merge :mod:`repro.obs` registry, plus the
  campaign's own work-scoped counters (``campaign.units`` /
  ``campaign.units_ok`` / ``campaign.units_invalid``).

Because the fold is exact (integer adds, max-combines) and each unit's
result is a pure function of the unit itself, :meth:`CampaignReport.
metrics_json` and :meth:`CampaignReport.report_json` are byte-identical
no matter how the campaign was scheduled: one worker or eight, straight
through or killed and resumed, retries or not.  Spans and per-unit meta
are deliberately excluded -- they carry wall-clock times and worker
counts, which legitimately differ between executions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.campaign.units import UnitResult, WorkUnit
from repro.obs import RunTelemetry
from repro.obs.metrics import WORK, MetricDict, MetricsRegistry
from repro.obs.telemetry import TelemetryDict

#: Format tag of :meth:`CampaignReport.as_dict` payloads.
REPORT_FORMAT = "repro.campaign/1"


@dataclass(frozen=True)
class CampaignReport:
    """Everything a finished (or partially finished) campaign produced."""

    spec: str
    scale: str
    seed: int
    rows: tuple[dict[str, object], ...] = ()
    metrics: dict[str, MetricDict] = field(default_factory=dict)

    def telemetry(self) -> RunTelemetry:
        """The merged campaign telemetry as a :class:`RunTelemetry`."""
        return RunTelemetry(
            metrics=dict(self.metrics),
            meta={"tool": "campaign", "spec": self.spec, "scale": self.scale},
        )

    def metrics_json(self) -> str:
        """Canonical JSON of the merged work-scoped metrics.

        The campaign determinism artifact: byte-identical at any worker
        count and across kill/resume histories of the same campaign.
        """
        return self.telemetry().metrics_json()

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (the ``--report-out`` file format)."""
        return {
            "format": REPORT_FORMAT,
            "spec": self.spec,
            "scale": self.scale,
            "seed": self.seed,
            "rows": [dict(row) for row in self.rows],
            "metrics": {name: dict(self.metrics[name]) for name in sorted(self.metrics)},
        }

    def report_json(self) -> str:
        """Canonical JSON of the whole report (rows + metrics)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def counts(self) -> dict[str, int]:
        """Rows per status (``ok``/``invalid``/``failed``/``quarantined``/``missing``)."""
        out = {"ok": 0, "invalid": 0, "failed": 0, "quarantined": 0, "missing": 0}
        for row in self.rows:
            out[str(row["status"])] += 1
        return out

    def summary(self) -> str:
        """A terminal-friendly rollup (the CLI prints this; we never do)."""
        counts = self.counts()
        lines = [
            f"campaign: {self.spec}",
            f"  scale={self.scale} seed={self.seed} units={len(self.rows)}",
            "  status: "
            + " ".join(
                f"{name}={counts[name]}"
                for name in ("ok", "invalid", "failed", "quarantined", "missing")
            ),
        ]
        for row in self.rows:
            status = str(row["status"])
            if status == "ok":
                stats = row.get("stats")
                detail = (
                    " ".join(
                        f"{name}={float(value):.4g}"
                        for name, value in sorted(stats.items())
                    )
                    if isinstance(stats, dict)
                    else ""
                )
            else:
                detail = str(row.get("error") or status)
            lines.append(f"    [{status:>7s}] {row['key']}  {detail}")
        return "\n".join(lines)


def build_report(
    spec: str,
    scale: str,
    seed: int,
    units: tuple[WorkUnit, ...] | list[WorkUnit],
    results: dict[str, UnitResult],
    quarantined: dict[str, str] | None = None,
) -> CampaignReport:
    """Fold per-unit results into the canonical aggregated report.

    *results* maps unit key to the unit's **standing** result (the first
    one durably recorded).  Units without a result appear as
    ``status="missing"`` rows, so a partially resumed campaign still
    reports honestly.  *quarantined* maps poison-unit keys to their
    quarantine error text; those units report as ``status="quarantined"``
    rows -- the error text is synthesized purely from journaled
    reclaim/death counts, so replaying the same journal reproduces the
    same report bytes.
    """
    registry = MetricsRegistry()
    quarantined = quarantined or {}
    rows: list[dict[str, object]] = []
    n_ok = 0
    n_invalid = 0
    n_quarantined = 0
    for unit in sorted(units, key=lambda u: u.index):
        result = results.get(unit.key)
        row: dict[str, object] = {
            "unit": unit.index,
            "key": unit.key,
            "workload": unit.workload,
            "params": unit.params(),
        }
        if unit.key in quarantined:
            row["status"] = "quarantined"
            row["error"] = quarantined[unit.key]
            n_quarantined += 1
        elif result is None:
            row["status"] = "missing"
        elif result.ok:
            row["status"] = "ok"
            row["stats"] = dict(result.row)
            n_ok += 1
            if result.telemetry is not None:
                _merge_unit_telemetry(registry, result.telemetry)
        elif result.retryable:
            row["status"] = "failed"
            row["error"] = result.error
        else:
            row["status"] = "invalid"
            row["error"] = result.error
            n_invalid += 1
        rows.append(row)
    registry.counter("campaign.units", scope=WORK).inc(len(rows))
    registry.counter("campaign.units_ok", scope=WORK).inc(n_ok)
    registry.counter("campaign.units_invalid", scope=WORK).inc(n_invalid)
    # Work-scoped on purpose: which units are quarantined is a pure
    # function of the journal's terminal records, not of wall-clock
    # scheduling -- replaying the same journal yields the same count.
    registry.counter("campaign.units_quarantined", scope=WORK).inc(n_quarantined)
    return CampaignReport(
        spec=spec,
        scale=scale,
        seed=seed,
        rows=tuple(rows),
        metrics=registry.as_dict(),
    )


def _merge_unit_telemetry(registry: MetricsRegistry, payload: TelemetryDict) -> None:
    """Fold one unit's serialized telemetry into the campaign registry.

    Only the metrics participate: spans carry wall-clock times and the
    unit meta carries worker counts, neither of which belongs in a
    deterministic aggregate.
    """
    run = RunTelemetry.from_dict(payload)
    registry.merge(run.metrics)
