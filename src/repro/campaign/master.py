"""The campaign master: lease, dispatch, supervise, record, resume.

:class:`CampaignMaster` drives one campaign to completion.  A fresh run
journals the header and every ``queued`` unit before dispatching; a
resumed run (:meth:`CampaignMaster.resume` + ``run(resume=True)``)
replays the journal instead, validates the expansion fingerprint, keeps
every durably recorded result, and re-leases only what is still
outstanding -- expired leases, leases owned by dead incarnations, and
retryable failures with attempt budget left.

Workers are the existing :class:`~repro.runtime.engine.ExecutionEngine`
pool: units cross the process boundary as frozen
:class:`~repro.campaign.units.WorkUnit` payloads (wrapped in a
:class:`LeasedUnit` envelope when journaled, so the worker can heartbeat)
and come back as :class:`~repro.campaign.units.UnitResult` rows.  The
dispatch wrapper (:func:`_execute_unit_task`) converts unexpected worker
exceptions into retryable failures so one bad unit cannot take down the
campaign, while deterministic failures (invalid cells) complete normally
with ``ok=False``.

**Supervision.**  While a batch executes, the engine's ``tick`` hook
gives control back to the master every ``policy.tick_s``: it tails the
journal for worker heartbeats, feeds them to a
:class:`~repro.campaign.supervise.Supervisor`, and honors its decisions
-- *slow* leases are extended with bounded backoff, *stuck* leases
(heartbeat-stale) are fenced, journaled as ``reclaimed``, and their
engine futures abandoned immediately, no wall-timeout wait.  A worker
process lost to a pool crash is journaled as ``failed kind="died"``
(the engine's per-item crash budget hands it straight back instead of
retrying blind).  A unit reclaimed or orphaned too many times is
**quarantined**: a distinct terminal state reported honestly.

**Drain.**  SIGTERM closes the engine's dispatch gate -- no new leases
-- and lets in-flight units finish until the drain deadline, after which
they are reclaimed with reason ``drain`` (never counted toward
quarantine).  A clean ``drained`` marker ends the journal so resume
needs no replay guesswork.

Journal *state transitions* happen in the master only -- ``leased`` from
the engine's ``prepare`` hook, ``done``/``failed`` from ``on_result``,
``extended``/``reclaimed``/``quarantined`` from the tick -- workers
append only advisory ``heartbeat`` records, so every transition still
has exactly one writer.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import cast

from repro.campaign.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    CampaignJournalError,
    JournalRecord,
)
from repro.campaign.queue import (
    RECLAIM_FAULT_REASONS,
    QueueState,
    UnitStatus,
)
from repro.campaign.report import CampaignReport, build_report
from repro.campaign.spec import CampaignSpec
from repro.campaign.supervise import (
    Extend,
    JournalTail,
    SupervisePolicy,
    Supervisor,
)
from repro.campaign.units import UnitResult, WorkUnit, execute_unit
from repro.obs.live import live_collector, record_live
from repro.runtime.engine import ExecutionEngine

#: Error text journaled when a pool worker is lost mid-unit.
WORKER_DIED_ERROR = "worker process died mid-unit"


@dataclass
class CampaignRunStats:
    """What one :meth:`CampaignMaster.run` call did."""

    units_total: int = 0
    executed: int = 0  # units dispatched by this run
    reused: int = 0  # results recovered from the journal
    retries: int = 0  # failed records written by this run
    exhausted: int = 0  # units that ran out of attempt budget
    torn_tail: bool = False  # the journal ended in a crash-torn line
    mode: str = "serial"  # last engine pass mode
    workers: int = 1
    reclaims: int = 0  # stuck/expired leases reclaimed by this run
    extensions: int = 0  # slow leases extended by this run
    deaths: int = 0  # worker processes lost mid-unit
    quarantined: int = 0  # units quarantined by this run
    drained: bool = False  # this run stopped on a SIGTERM drain


@dataclass(frozen=True)
class CampaignOutcome:
    """A finished :meth:`CampaignMaster.run`: report, results, accounting."""

    report: CampaignReport
    results: dict[str, UnitResult] = field(default_factory=dict)
    stats: CampaignRunStats = field(default_factory=CampaignRunStats)


@dataclass(frozen=True)
class LeasedUnit:
    """A dispatched unit plus everything its worker needs to heartbeat."""

    unit: WorkUnit
    journal_path: str
    fence: int
    worker: str
    heartbeat_s: float


def _execute_unit_task(
    payload: "WorkUnit | LeasedUnit", context: object
) -> UnitResult:
    """The engine work function: run one unit, never let it raise.

    :func:`~repro.campaign.units.execute_unit` already absorbs
    deterministic failures; anything else escaping here is an unexpected
    crash and comes back as a retryable failure record instead of
    poisoning the pool pass.  For :class:`LeasedUnit` payloads a
    :class:`~repro.campaign.supervise.HeartbeatEmitter` appends advisory
    liveness records to the journal for the unit's duration.
    """
    # checks: worker-scope
    emitter = None
    if isinstance(payload, LeasedUnit):
        unit = payload.unit
        if payload.heartbeat_s > 0:
            from repro.campaign.chaos import (
                heartbeat_filter_from_env,
                tamper_from_env,
            )
            from repro.campaign.supervise import HeartbeatEmitter

            emitter = HeartbeatEmitter(
                payload.journal_path,
                key=unit.key,
                index=unit.index,
                fence=payload.fence,
                worker=payload.worker,
                interval_s=payload.heartbeat_s,
                chaos=heartbeat_filter_from_env(),
            )
            emitter.journal.tamper = tamper_from_env(
                payload.journal_path, role="worker"
            )
            emitter.start()
    else:
        unit = payload
    try:
        return execute_unit(unit)
    except Exception as exc:  # the process boundary must not leak raises
        return UnitResult(
            index=unit.index,
            key=unit.key,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            retryable=True,
        )
    finally:
        if emitter is not None:
            emitter.stop()


class CampaignMaster:
    """Runs one campaign, optionally journaled, supervised, resumable.

    Parameters
    ----------
    spec:
        The campaign, as a grammar string or a parsed
        :class:`~repro.campaign.spec.CampaignSpec`.
    journal:
        Where to journal transitions; ``None`` runs in-memory only
        (no resume, no heartbeats -- e.g. the sweep front-end).
    scale, seed, payload_bytes, fault_seed:
        Expansion options (see :meth:`CampaignSpec.expand`).
    workers:
        Engine worker processes (``None`` = auto, ``1`` = serial).
    lease_timeout_s:
        How long a lease stays valid; an expired lease is re-runnable.
    max_attempts:
        Total tries a retryably-failing unit gets before it is reported
        as ``failed``.
    supervise:
        The :class:`~repro.campaign.supervise.SupervisePolicy`
        (heartbeat interval, staleness threshold, quarantine threshold);
        defaults to :meth:`SupervisePolicy.resolve` against the lease
        timeout.
    drain_timeout_s:
        After SIGTERM, how long in-flight units get to finish before
        being reclaimed with reason ``drain``.
    """

    def __init__(
        self,
        spec: CampaignSpec | str,
        *,
        journal: CampaignJournal | None = None,
        scale: str = "benchmark",
        seed: int = 1,
        payload_bytes: int = 64,
        fault_seed: int | None = None,
        workers: int | None = None,
        lease_timeout_s: float = 600.0,
        max_attempts: int = 3,
        supervise: SupervisePolicy | None = None,
        drain_timeout_s: float = 30.0,
    ) -> None:
        self.spec = CampaignSpec.parse(spec) if isinstance(spec, str) else spec
        self.journal = journal
        self.scale = scale
        self.seed = int(seed)
        self.payload_bytes = int(payload_bytes)
        self.fault_seed = fault_seed
        self.workers = workers
        if lease_timeout_s <= 0.0:
            raise ValueError(f"lease_timeout_s must be > 0, got {lease_timeout_s}")
        self.lease_timeout_s = float(lease_timeout_s)
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = int(max_attempts)
        self.supervise = (
            supervise
            if supervise is not None
            else SupervisePolicy.resolve(lease_timeout_s=self.lease_timeout_s)
        )
        if drain_timeout_s <= 0.0:
            raise ValueError(f"drain_timeout_s must be > 0, got {drain_timeout_s}")
        self.drain_timeout_s = float(drain_timeout_s)
        self.units = self.spec.expand(
            scale=scale, seed=self.seed, payload_bytes=self.payload_bytes,
            fault_seed=fault_seed,
        )
        self.incarnation = f"{os.getpid():x}.{time.time_ns():x}"
        self._draining = False
        self._drain_deadline: float | None = None

    # ------------------------------------------------------------------
    # Construction from a journal (the `resume` CLI path)
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        journal: CampaignJournal,
        *,
        workers: int | None = None,
        supervise: SupervisePolicy | None = None,
        drain_timeout_s: float = 30.0,
    ) -> "CampaignMaster":
        """A master reconstructed from a journal's header record."""
        header = journal.read().header
        if header is None:
            raise CampaignJournalError(f"journal {journal.path} has no header")
        fault_seed = cast("int | None", header.get("fault_seed"))
        return cls(
            str(header["spec"]),
            journal=journal,
            scale=str(header["scale"]),
            seed=int(cast(int, header["seed"])),
            payload_bytes=int(cast(int, header["payload_bytes"])),
            fault_seed=None if fault_seed is None else int(fault_seed),
            workers=workers,
            lease_timeout_s=float(cast(float, header["lease_timeout_s"])),
            max_attempts=int(cast(int, header["max_attempts"])),
            supervise=supervise,
            drain_timeout_s=drain_timeout_s,
        )

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _header_record(self) -> JournalRecord:
        return {
            "event": "campaign",
            "format": JOURNAL_FORMAT,
            "spec": self.spec.spec(),
            "scale": self.scale,
            "seed": self.seed,
            "payload_bytes": self.payload_bytes,
            "fault_seed": self.fault_seed,
            "lease_timeout_s": self.lease_timeout_s,
            "max_attempts": self.max_attempts,
            "units": len(self.units),
            "fingerprint": self.fingerprint,
        }

    @property
    def fingerprint(self) -> int:
        """The expansion digest journals carry and resume validates."""
        return self.spec.fingerprint(
            scale=self.scale,
            seed=self.seed,
            payload_bytes=self.payload_bytes,
            fault_seed=self.fault_seed,
        )

    def _append(self, record: JournalRecord) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _start_fresh(self) -> QueueState:
        if self.journal is not None and self.journal.exists:
            raise CampaignJournalError(
                f"journal {self.journal.path} already exists; "
                "use resume to continue it"
            )
        self._append(self._header_record())
        for unit in self.units:
            self._append({"event": "queued", "unit": unit.key, "index": unit.index})
        self._append({"event": "master", "incarnation": self.incarnation})
        return QueueState.for_units(self.units)

    def _start_resumed(self, stats: CampaignRunStats) -> QueueState:
        if self.journal is None:
            raise CampaignJournalError("resume requires a journal")
        contents = self.journal.read()
        header = contents.header
        if header is None:
            raise CampaignJournalError(f"journal {self.journal.path} has no header")
        recorded = int(cast(int, header.get("fingerprint", 0)))
        if recorded != self.fingerprint:
            raise CampaignJournalError(
                f"journal {self.journal.path} was recorded for a different "
                f"campaign expansion (fingerprint {recorded} != {self.fingerprint}); "
                "refusing to mix results"
            )
        stats.torn_tail = contents.torn_tail
        queue = QueueState.for_units(self.units)
        queue.replay(contents.records)
        stats.reused = sum(
            1
            for entry in queue.units.values()
            if entry.status is UnitStatus.DONE
        )
        self._append({"event": "master", "incarnation": self.incarnation})
        return queue

    # ------------------------------------------------------------------
    # Supervision bookkeeping (journal + queue + stats in one step)
    # ------------------------------------------------------------------
    def _reclaim(
        self,
        queue: QueueState,
        supervisor: Supervisor,
        stats: CampaignRunStats,
        key: str,
        fence: int,
        reason: str,
        now: float,
    ) -> None:
        """Fence a lease off, journal the reclaim, maybe quarantine."""
        self._append(
            {"event": "reclaimed", "unit": key, "fence": fence,
             "reason": reason, "t": now}
        )
        queue.mark_reclaimed(key, reason)
        supervisor.untrack(key)
        if reason in RECLAIM_FAULT_REASONS:
            stats.reclaims += 1
        self._maybe_quarantine(queue, stats, key)

    def _maybe_quarantine(
        self, queue: QueueState, stats: CampaignRunStats, key: str
    ) -> None:
        """Quarantine *key* if its reclaim or death budget is spent."""
        entry = queue.units[key]
        if entry.terminal:
            return
        threshold = self.supervise.quarantine_after
        if entry.reclaims < threshold and entry.deaths < threshold:
            return
        # Synthesized purely from journaled counters, so replaying the
        # journal reproduces the identical report row.
        error = (
            f"quarantined after {entry.reclaims} lease reclamations "
            f"and {entry.deaths} worker deaths"
        )
        self._append(
            {"event": "quarantined", "unit": key, "reclaims": entry.reclaims,
             "deaths": entry.deaths, "error": error}
        )
        queue.mark_quarantined(key, error)
        stats.quarantined += 1

    def _handle_sigterm(self, signum: int, frame: object) -> None:
        self._draining = True

    def _install_sigterm(self) -> object | None:
        """Install the drain handler; returns the previous one, if any."""
        if threading.current_thread() is not threading.main_thread():
            return None
        try:
            return signal.signal(signal.SIGTERM, self._handle_sigterm)
        except (ValueError, OSError):  # exotic embedding; drain unavailable
            return None

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignOutcome:
        """Drive the campaign until every unit is terminal or out of budget."""
        stats = CampaignRunStats(
            units_total=len(self.units),
            workers=ExecutionEngine(workers=self.workers).workers,
        )
        queue = self._start_resumed(stats) if resume else self._start_fresh()
        by_key = {unit.key: unit for unit in self.units}
        engine = ExecutionEngine(workers=self.workers)
        policy = self.supervise
        supervisor = Supervisor(policy)
        supervised = self.journal is not None
        if supervised:
            # Leases are granted at dispatch but execution starts when a
            # pool worker picks the unit up; cap the dispatch window at
            # the worker count so a leased unit is (nearly) always
            # executing -- silent-but-queued leases would otherwise burn
            # their first-beat grace waiting in line.
            engine.max_inflight = min(engine.max_inflight, engine.workers)
        tail = JournalTail(self.journal.path) if self.journal is not None else None
        self._draining = False
        self._drain_deadline = None
        previous_handler = self._install_sigterm()
        try:
            self._run_loop(
                stats, queue, by_key, engine, policy, supervisor, supervised, tail
            )
        finally:
            if previous_handler is not None:
                signal.signal(signal.SIGTERM, previous_handler)  # type: ignore[arg-type]
        if self._draining:
            # Belt and braces: nothing of ours should still be leased
            # (in-flight work either finished or was drain-reclaimed in
            # the tick), but the drained marker promises it.
            for entry in queue.leases():
                if entry.lease_owner == self.incarnation:
                    self._reclaim(
                        queue, supervisor, stats, entry.key, entry.fence,
                        "drain", time.time(),
                    )
            outstanding = sum(1 for e in queue.units.values() if not e.terminal)
            self._append(
                {"event": "drained", "incarnation": self.incarnation,
                 "outstanding": outstanding, "t": time.time()}
            )
            stats.drained = True

        results = queue.results()
        # Units that exhausted their retry budget still belong in the
        # report -- as `failed` rows, not silent holes.
        for entry in queue.exhausted(self.max_attempts):
            stats.exhausted += 1
            results[entry.key] = UnitResult(
                index=entry.index,
                key=entry.key,
                ok=False,
                error=f"unit failed {entry.attempts} attempts",
                retryable=True,
            )
        quarantined = {
            entry.key: entry.quarantine_error or "quarantined"
            for entry in queue.quarantined()
        }
        report = build_report(
            self.spec.spec(), self.scale, self.seed, self.units, results,
            quarantined=quarantined,
        )
        return CampaignOutcome(report=report, results=results, stats=stats)

    def _run_loop(
        self,
        stats: CampaignRunStats,
        queue: QueueState,
        by_key: dict[str, WorkUnit],
        engine: ExecutionEngine,
        policy: SupervisePolicy,
        supervisor: Supervisor,
        supervised: bool,
        tail: JournalTail | None,
    ) -> None:
        while not self._draining:
            now = time.time()
            ready = queue.runnable(now, self.incarnation, self.max_attempts)
            if not ready:
                break
            batch: list[WorkUnit] = []
            for entry in ready:
                if entry.status is UnitStatus.LEASED:
                    # A lease we can take over: wall-clock expired, or
                    # held by a dead incarnation (journals are
                    # single-master).  Fence it off first so its late
                    # records are rejected on replay.
                    reason = (
                        "expired"
                        if entry.lease_owner == self.incarnation
                        else "takeover"
                    )
                    self._reclaim(
                        queue, supervisor, stats, entry.key, entry.fence,
                        reason, now,
                    )
                    if queue.units[entry.key].terminal:
                        continue  # the reclaim tipped it into quarantine
                batch.append(by_key[entry.key])
            if not batch:
                continue  # quarantines shrank the batch; re-plan
            index_of = {unit.key: i for i, unit in enumerate(batch)}

            def prepare(
                _index: int, payload: "WorkUnit | LeasedUnit"
            ) -> "WorkUnit | LeasedUnit":
                # Engine-internal retries re-prepare the wrapped item.
                unit = payload.unit if isinstance(payload, LeasedUnit) else payload
                fence = queue.next_fence(unit.key)
                granted = time.time()
                expires = granted + self.lease_timeout_s
                self._append(
                    {"event": "leased", "unit": unit.key, "index": unit.index,
                     "worker": self.incarnation, "fence": fence,
                     "granted": granted, "expires": expires}
                )
                queue.lease(unit.key, self.incarnation, expires, fence, granted)
                supervisor.track(unit.key, unit.index, fence, granted, expires)
                if self.journal is None:
                    return unit
                return LeasedUnit(
                    unit=unit,
                    journal_path=str(self.journal.path),
                    fence=fence,
                    worker=self.incarnation,
                    heartbeat_s=policy.heartbeat_s,
                )

            def on_result(_index: int, result: UnitResult) -> None:
                key = result.key
                fence = queue.units[key].fence
                supervisor.untrack(key)
                if result.ok or not result.retryable:
                    if queue.mark_done(key, result, fence):
                        self._append(
                            {"event": "done", "unit": key, "fence": fence,
                             "result": result.as_dict()}
                        )
                else:
                    attempts = queue.mark_failed(
                        key, kind="crash", error=result.error
                    )
                    stats.retries += 1
                    self._append(
                        {"event": "failed", "unit": key, "fence": fence,
                         "kind": "crash", "error": result.error,
                         "attempt": attempts}
                    )

            def on_abandon(index: int, reason: str) -> None:
                if reason != "crash":
                    return  # tick reclaims journal their own records
                key = batch[index].key
                entry = queue.units[key]
                if entry.terminal:
                    return
                supervisor.untrack(key)
                deaths = queue.mark_failed(
                    key, kind="died", error=WORKER_DIED_ERROR
                )
                stats.deaths += 1
                self._append(
                    {"event": "failed", "unit": key, "fence": entry.fence,
                     "kind": "died", "error": WORKER_DIED_ERROR,
                     "death": deaths}
                )
                self._maybe_quarantine(queue, stats, key)

            def tick(inflight: "tuple[int, ...] | list[int]") -> set[int]:
                if tail is not None:
                    for record in tail.poll():
                        if record.get("event") != "heartbeat":
                            continue
                        supervisor.observe(record)
                        queue.observe_heartbeat(
                            str(record.get("unit")),
                            cast("int | None", record.get("fence")),
                            int(cast(int, record.get("seq", 0))),
                            float(cast(float, record.get("t", 0.0))),
                        )
                now = time.time()
                if live_collector() is not None:
                    # Exec-scoped, advisory: queue counts and lease
                    # health for the snapshot stream watch tails.
                    counts = queue.counts()
                    for name in sorted(counts):
                        record_live(f"campaign.units.{name}", counts[name])
                    health = supervisor.health_counts(now)
                    for name in sorted(health):
                        record_live(f"campaign.leases.{name}", health[name])
                abandon: set[int] = set()
                if self._draining:
                    if self._drain_deadline is None:
                        self._drain_deadline = now + self.drain_timeout_s
                    if now >= self._drain_deadline:
                        for key, lease in list(supervisor.leases.items()):
                            self._reclaim(
                                queue, supervisor, stats, key, lease.fence,
                                "drain", now,
                            )
                            i = index_of.get(key)
                            if i is not None:
                                abandon.add(i)
                    return abandon
                for decision in supervisor.decide(now):
                    if isinstance(decision, Extend):
                        self._append(
                            {"event": "extended", "unit": decision.key,
                             "fence": decision.fence,
                             "expires": decision.expires_s,
                             "extension": decision.extension}
                        )
                        queue.extend(
                            decision.key, decision.expires_s, decision.extension
                        )
                        stats.extensions += 1
                    else:
                        self._reclaim(
                            queue, supervisor, stats, decision.key,
                            decision.fence, decision.reason, now,
                        )
                        i = index_of.get(decision.key)
                        if i is not None:
                            abandon.add(i)
                return abandon

            engine.map(
                _execute_unit_task,
                batch,
                prepare=prepare,
                on_result=on_result,
                tick=tick if supervised else None,
                tick_interval_s=policy.tick_s,
                dispatch_gate=lambda: not self._draining,
                on_abandon=on_abandon,
                abandon_after_crashes=1,
            )
            stats.executed += len(batch)
            stats.mode = engine.stats.mode


# ----------------------------------------------------------------------
# Journal-only views (the `status` / `report` CLI paths; no execution)
# ----------------------------------------------------------------------
def journal_status(journal: CampaignJournal) -> dict[str, object]:
    """Replay a journal into a status snapshot without running anything."""
    contents = journal.read()
    header = contents.header
    if header is None:
        raise CampaignJournalError(f"journal {journal.path} has no header")
    master = CampaignMaster.resume(journal)
    queue = QueueState.for_units(master.units)
    queue.replay(contents.records)
    now = time.time()
    leases = [
        {
            "unit": entry.key,
            "index": entry.index,
            "owner": entry.lease_owner,
            "fence": entry.fence,
            "lease_age_s": round(max(0.0, now - entry.lease_granted_s), 3),
            # A lease that never managed a beat shows its age as the
            # staleness -- the same anchor the supervisor judges by.
            "heartbeat_age_s": (
                round(max(0.0, now - entry.last_heartbeat_s), 3)
                if entry.heartbeat_seq >= 0
                else None
            ),
            "heartbeat_seq": entry.heartbeat_seq,
            "expires_in_s": round(entry.lease_expires_s - now, 3),
        }
        for entry in queue.leases()
    ]
    quarantined = [
        {
            "unit": entry.key,
            "index": entry.index,
            "reclaims": entry.reclaims,
            "deaths": entry.deaths,
            "error": entry.quarantine_error,
        }
        for entry in queue.quarantined()
    ]
    drained = any(r.get("event") == "drained" for r in contents.records)
    return {
        "spec": header["spec"],
        "scale": header["scale"],
        "seed": header["seed"],
        "units": len(master.units),
        "counts": queue.counts(),
        "torn_tail": contents.torn_tail,
        "complete": queue.complete,
        "leases": leases,
        "quarantined": quarantined,
        "drained": drained,
        "warnings": list(contents.warnings),
    }


def report_from_journal(journal: CampaignJournal) -> CampaignReport:
    """The aggregated report of whatever a journal has durably recorded.

    Purely a fold over terminal records -- no units execute, so this
    works on journals of crashed, partial, or finished campaigns alike.
    """
    contents = journal.read()
    master = CampaignMaster.resume(journal)
    queue = QueueState.for_units(master.units)
    queue.replay(contents.records)
    quarantined = {
        entry.key: entry.quarantine_error or "quarantined"
        for entry in queue.quarantined()
    }
    return build_report(
        master.spec.spec(), master.scale, master.seed, master.units,
        queue.results(), quarantined=quarantined,
    )
