"""The campaign master: lease, dispatch, record, aggregate, resume.

:class:`CampaignMaster` drives one campaign to completion.  A fresh run
journals the header and every ``queued`` unit before dispatching; a
resumed run (:meth:`CampaignMaster.resume` + ``run(resume=True)``)
replays the journal instead, validates the expansion fingerprint, keeps
every durably recorded result, and re-leases only what is still
outstanding -- expired leases, leases owned by the dead incarnation, and
retryable failures with attempt budget left.

Workers are the existing :class:`~repro.runtime.engine.ExecutionEngine`
pool: units cross the process boundary as frozen
:class:`~repro.campaign.units.WorkUnit` payloads and come back as
:class:`~repro.campaign.units.UnitResult` rows.  The dispatch wrapper
(:func:`_execute_unit_task`) converts unexpected worker exceptions into
retryable failures so one bad unit cannot take down the campaign, while
deterministic failures (invalid cells) complete normally with
``ok=False``.

Journal writes happen in the master only -- ``leased`` from the engine's
``prepare`` hook (right before dispatch), ``done``/``failed`` from
``on_result`` (the moment a result lands) -- so the journal is
single-writer even when eight workers are executing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import cast

from repro.campaign.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    CampaignJournalError,
    JournalRecord,
)
from repro.campaign.queue import QueueState, UnitStatus
from repro.campaign.report import CampaignReport, build_report
from repro.campaign.spec import CampaignSpec
from repro.campaign.units import UnitResult, WorkUnit, execute_unit
from repro.runtime.engine import ExecutionEngine


@dataclass
class CampaignRunStats:
    """What one :meth:`CampaignMaster.run` call did."""

    units_total: int = 0
    executed: int = 0  # units dispatched by this run
    reused: int = 0  # results recovered from the journal
    retries: int = 0  # failed records written by this run
    exhausted: int = 0  # units that ran out of attempt budget
    torn_tail: bool = False  # the journal ended in a crash-torn line
    mode: str = "serial"  # last engine pass mode
    workers: int = 1


@dataclass(frozen=True)
class CampaignOutcome:
    """A finished :meth:`CampaignMaster.run`: report, results, accounting."""

    report: CampaignReport
    results: dict[str, UnitResult] = field(default_factory=dict)
    stats: CampaignRunStats = field(default_factory=CampaignRunStats)


def _execute_unit_task(unit: WorkUnit, context: object) -> UnitResult:
    """The engine work function: run one unit, never let it raise.

    :func:`~repro.campaign.units.execute_unit` already absorbs
    deterministic failures; anything else escaping here is an unexpected
    crash and comes back as a retryable failure record instead of
    poisoning the pool pass.
    """
    try:
        return execute_unit(unit)
    except Exception as exc:  # the process boundary must not leak raises
        return UnitResult(
            index=unit.index,
            key=unit.key,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            retryable=True,
        )


class CampaignMaster:
    """Runs one campaign, optionally journaled and resumable.

    Parameters
    ----------
    spec:
        The campaign, as a grammar string or a parsed
        :class:`~repro.campaign.spec.CampaignSpec`.
    journal:
        Where to journal transitions; ``None`` runs in-memory only
        (no resume, e.g. the sweep front-end).
    scale, seed, payload_bytes, fault_seed:
        Expansion options (see :meth:`CampaignSpec.expand`).
    workers:
        Engine worker processes (``None`` = auto, ``1`` = serial).
    lease_timeout_s:
        How long a lease stays valid; an expired lease is re-runnable.
    max_attempts:
        Total tries a retryably-failing unit gets before it is reported
        as ``failed``.
    """

    def __init__(
        self,
        spec: CampaignSpec | str,
        *,
        journal: CampaignJournal | None = None,
        scale: str = "benchmark",
        seed: int = 1,
        payload_bytes: int = 64,
        fault_seed: int | None = None,
        workers: int | None = None,
        lease_timeout_s: float = 600.0,
        max_attempts: int = 3,
    ) -> None:
        self.spec = CampaignSpec.parse(spec) if isinstance(spec, str) else spec
        self.journal = journal
        self.scale = scale
        self.seed = int(seed)
        self.payload_bytes = int(payload_bytes)
        self.fault_seed = fault_seed
        self.workers = workers
        if lease_timeout_s <= 0.0:
            raise ValueError(f"lease_timeout_s must be > 0, got {lease_timeout_s}")
        self.lease_timeout_s = float(lease_timeout_s)
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = int(max_attempts)
        self.units = self.spec.expand(
            scale=scale, seed=self.seed, payload_bytes=self.payload_bytes,
            fault_seed=fault_seed,
        )
        self.incarnation = f"{os.getpid():x}.{time.time_ns():x}"

    # ------------------------------------------------------------------
    # Construction from a journal (the `resume` CLI path)
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls, journal: CampaignJournal, *, workers: int | None = None
    ) -> "CampaignMaster":
        """A master reconstructed from a journal's header record."""
        header = journal.read().header
        if header is None:
            raise CampaignJournalError(f"journal {journal.path} has no header")
        fault_seed = cast("int | None", header.get("fault_seed"))
        return cls(
            str(header["spec"]),
            journal=journal,
            scale=str(header["scale"]),
            seed=int(cast(int, header["seed"])),
            payload_bytes=int(cast(int, header["payload_bytes"])),
            fault_seed=None if fault_seed is None else int(fault_seed),
            workers=workers,
            lease_timeout_s=float(cast(float, header["lease_timeout_s"])),
            max_attempts=int(cast(int, header["max_attempts"])),
        )

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _header_record(self) -> JournalRecord:
        return {
            "event": "campaign",
            "format": JOURNAL_FORMAT,
            "spec": self.spec.spec(),
            "scale": self.scale,
            "seed": self.seed,
            "payload_bytes": self.payload_bytes,
            "fault_seed": self.fault_seed,
            "lease_timeout_s": self.lease_timeout_s,
            "max_attempts": self.max_attempts,
            "units": len(self.units),
            "fingerprint": self.fingerprint,
        }

    @property
    def fingerprint(self) -> int:
        """The expansion digest journals carry and resume validates."""
        return self.spec.fingerprint(
            scale=self.scale,
            seed=self.seed,
            payload_bytes=self.payload_bytes,
            fault_seed=self.fault_seed,
        )

    def _append(self, record: JournalRecord) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _start_fresh(self) -> QueueState:
        if self.journal is not None and self.journal.exists:
            raise CampaignJournalError(
                f"journal {self.journal.path} already exists; "
                "use resume to continue it"
            )
        self._append(self._header_record())
        for unit in self.units:
            self._append({"event": "queued", "unit": unit.key, "index": unit.index})
        self._append({"event": "master", "incarnation": self.incarnation})
        return QueueState.for_units(self.units)

    def _start_resumed(self, stats: CampaignRunStats) -> QueueState:
        if self.journal is None:
            raise CampaignJournalError("resume requires a journal")
        contents = self.journal.read()
        header = contents.header
        if header is None:
            raise CampaignJournalError(f"journal {self.journal.path} has no header")
        recorded = int(cast(int, header.get("fingerprint", 0)))
        if recorded != self.fingerprint:
            raise CampaignJournalError(
                f"journal {self.journal.path} was recorded for a different "
                f"campaign expansion (fingerprint {recorded} != {self.fingerprint}); "
                "refusing to mix results"
            )
        stats.torn_tail = contents.torn_tail
        queue = QueueState.for_units(self.units)
        queue.replay(contents.records)
        stats.reused = sum(
            1
            for entry in queue.units.values()
            if entry.status is UnitStatus.DONE
        )
        self._append({"event": "master", "incarnation": self.incarnation})
        return queue

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignOutcome:
        """Drive the campaign until every unit is DONE or out of budget."""
        stats = CampaignRunStats(
            units_total=len(self.units),
            workers=ExecutionEngine(workers=self.workers).workers,
        )
        queue = self._start_resumed(stats) if resume else self._start_fresh()
        by_key = {unit.key: unit for unit in self.units}
        engine = ExecutionEngine(workers=self.workers)

        while True:
            ready = queue.runnable(time.time(), self.incarnation, self.max_attempts)
            if not ready:
                break
            batch = [by_key[entry.key] for entry in ready]

            def prepare(_index: int, unit: WorkUnit) -> WorkUnit:
                expires = time.time() + self.lease_timeout_s
                self._append(
                    {
                        "event": "leased",
                        "unit": unit.key,
                        "worker": self.incarnation,
                        "expires": expires,
                    }
                )
                queue.lease(unit.key, self.incarnation, expires)
                return unit

            def on_result(_index: int, result: UnitResult) -> None:
                if result.ok or not result.retryable:
                    if queue.mark_done(result.key, result):
                        self._append(
                            {
                                "event": "done",
                                "unit": result.key,
                                "result": result.as_dict(),
                            }
                        )
                else:
                    attempts = queue.mark_failed(result.key)
                    stats.retries += 1
                    self._append(
                        {
                            "event": "failed",
                            "unit": result.key,
                            "error": result.error,
                            "attempt": attempts,
                        }
                    )

            engine.map(_execute_unit_task, batch, prepare=prepare, on_result=on_result)
            stats.executed += len(batch)
            stats.mode = engine.stats.mode

        results = queue.results()
        # Units that exhausted their retry budget still belong in the
        # report -- as `failed` rows, not silent holes.
        for entry in queue.exhausted(self.max_attempts):
            stats.exhausted += 1
            results[entry.key] = UnitResult(
                index=entry.index,
                key=entry.key,
                ok=False,
                error=f"unit failed {entry.attempts} attempts",
                retryable=True,
            )
        report = build_report(
            self.spec.spec(), self.scale, self.seed, self.units, results
        )
        return CampaignOutcome(report=report, results=results, stats=stats)


# ----------------------------------------------------------------------
# Journal-only views (the `status` / `report` CLI paths; no execution)
# ----------------------------------------------------------------------
def journal_status(journal: CampaignJournal) -> dict[str, object]:
    """Replay a journal into a status snapshot without running anything."""
    contents = journal.read()
    header = contents.header
    if header is None:
        raise CampaignJournalError(f"journal {journal.path} has no header")
    master = CampaignMaster.resume(journal)
    queue = QueueState.for_units(master.units)
    queue.replay(contents.records)
    return {
        "spec": header["spec"],
        "scale": header["scale"],
        "seed": header["seed"],
        "units": len(master.units),
        "counts": queue.counts(),
        "torn_tail": contents.torn_tail,
        "complete": queue.complete,
    }


def report_from_journal(journal: CampaignJournal) -> CampaignReport:
    """The aggregated report of whatever a journal has durably recorded.

    Purely a fold over ``done`` records -- no units execute, so this
    works on journals of crashed, partial, or finished campaigns alike.
    """
    contents = journal.read()
    master = CampaignMaster.resume(journal)
    queue = QueueState.for_units(master.units)
    queue.replay(contents.records)
    return build_report(
        master.spec.spec(), master.scale, master.seed, master.units, queue.results()
    )
