"""Queue state: the journal replayed into per-unit lifecycle records.

The persistent queue is *derived*, never stored: replaying a journal's
records through :meth:`QueueState.apply` reconstructs exactly the state
the dead master had durably recorded, which is what makes ``--resume``
safe after any crash.  The in-memory mirrors (:meth:`QueueState.lease`,
:meth:`QueueState.mark_done`, :meth:`QueueState.mark_failed`, ...) keep
a live master's view in step with what it appends.

Lifecycle::

    QUEUED --lease--> LEASED --done--> DONE              (terminal)
       ^                 |----failed--> FAILED --lease--> ...
       |                 |
       '---reclaimed-----'        too many reclaims/deaths
                                  --> QUARANTINED        (terminal)

``done`` is terminal and first-wins: if a unit is somehow completed
twice (a worker finishing just before its lease is declared dead, then
the re-leased copy finishing too), the first recorded result stands and
the duplicate is ignored -- so the aggregated report never double-counts
a unit no matter how messy the crash history was.

**Fencing.**  Every lease grant carries a *fence token*: a per-unit
monotonically increasing integer.  A ``done``/``failed`` record is valid
only if its fence is the unit's *newest* granted fence and that fence
has not been revoked by a ``reclaimed`` record.  A worker that was
SIGSTOPped, declared stuck, reclaimed, and later resumed can therefore
never corrupt the queue: its late records carry a stale fence and are
rejected deterministically on replay -- first *valid* fence wins, so the
standing result (and with it :class:`~repro.campaign.report.
CampaignReport`) is identical under any reclamation history.  Records
without a fence (pre-fencing journals) are always considered valid.

A lease is *runnable again* when it has expired (wall clock), when it is
owned by a different master incarnation (journals are single-master, so
a foreign owner is by definition a dead one, and resume does not have to
wait out its lease timeout), or when it was explicitly reclaimed by the
supervisor (heartbeat-stale -- see :mod:`repro.campaign.supervise`).

**Poison units.**  ``failed`` records are two-budget: ``kind="crash"``
(an exception inside the worker; counts against ``--max-attempts``) and
``kind="died"`` (the worker process was lost mid-unit; counts against
the quarantine threshold).  A unit whose lease is reclaimed or whose
worker dies too many times is *quarantined* -- a distinct terminal state
reported honestly instead of being retried forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import cast

from repro.campaign.journal import JournalRecord
from repro.campaign.units import UnitResult, WorkUnit

#: ``reclaimed`` reasons that count toward the quarantine threshold
#: (``drain`` is operator-initiated, not the unit's fault).
RECLAIM_FAULT_REASONS = ("stuck", "expired")


class UnitStatus(Enum):
    """Where one unit is in its lifecycle."""

    QUEUED = "queued"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"
    QUARANTINED = "quarantined"


@dataclass
class UnitState:
    """One unit's current queue entry."""

    key: str
    index: int
    status: UnitStatus = UnitStatus.QUEUED
    attempts: int = 0  # crash-kind failures (in-worker exceptions)
    deaths: int = 0  # died-kind failures (worker process lost)
    reclaims: int = 0  # stuck/expired lease reclamations
    fence: int = 0  # newest granted fence token
    revoked: set[int] = field(default_factory=set)
    lease_owner: str | None = None
    lease_expires_s: float = 0.0
    lease_granted_s: float = 0.0
    last_heartbeat_s: float = 0.0
    heartbeat_seq: int = -1
    extensions: int = 0
    result: UnitResult | None = None
    last_error: str | None = None
    quarantine_error: str | None = None

    def fence_valid(self, fence: int | None) -> bool:
        """Whether a record carrying *fence* may transition this unit."""
        if fence is None:
            return True  # pre-fencing journals carry no tokens
        return fence == self.fence and fence not in self.revoked

    @property
    def terminal(self) -> bool:
        """DONE and QUARANTINED accept no further transitions."""
        return self.status in (UnitStatus.DONE, UnitStatus.QUARANTINED)

    def runnable(self, now: float, owner: str, max_attempts: int) -> bool:
        """Whether *owner* may (re-)lease this unit at time *now*."""
        if self.status is UnitStatus.QUEUED:
            return True
        if self.status is UnitStatus.FAILED:
            return self.attempts < max_attempts
        if self.status is UnitStatus.LEASED:
            return self.lease_owner != owner or self.lease_expires_s <= now
        return False  # DONE and QUARANTINED are terminal


class CampaignQueueError(ValueError):
    """Raised when journal records do not fit the campaign's unit set."""


def _record_fence(record: JournalRecord) -> int | None:
    fence = record.get("fence")
    return None if fence is None else int(cast(int, fence))


@dataclass
class QueueState:
    """Every unit's state, derived from (and mirrored ahead of) the journal."""

    units: dict[str, UnitState] = field(default_factory=dict)

    @staticmethod
    def for_units(units: tuple[WorkUnit, ...] | list[WorkUnit]) -> "QueueState":
        """A fresh queue with every unit QUEUED."""
        return QueueState(
            units={unit.key: UnitState(key=unit.key, index=unit.index) for unit in units}
        )

    @staticmethod
    def from_journal(records: list[JournalRecord]) -> "QueueState":
        """A queue rebuilt from a journal alone (its ``queued`` records
        define the unit set) -- the journal-only view ``status``,
        ``report`` and ``compact`` use; no spec expansion needed."""
        state = QueueState()
        for record in records:
            if record.get("event") == "queued":
                key = str(record.get("unit"))
                state.units[key] = UnitState(
                    key=key, index=int(cast(int, record.get("index", 0)))
                )
        state.replay(records)
        return state

    def _entry(self, record: JournalRecord) -> UnitState:
        key = str(record.get("unit"))
        entry = self.units.get(key)
        if entry is None:
            raise CampaignQueueError(
                f"journal references unknown unit {key!r} "
                "(spec/seed mismatch with the journal header?)"
            )
        return entry

    def apply(self, record: JournalRecord) -> None:
        """Replay one journal record into the state (non-unit events no-op)."""
        event = record.get("event")
        if event == "queued":
            self._entry(record)  # validates the key; QUEUED is the initial state
        elif event == "leased":
            entry = self._entry(record)
            if entry.terminal:
                return
            fence = _record_fence(record)
            entry.status = UnitStatus.LEASED
            entry.lease_owner = str(record.get("worker"))
            entry.lease_expires_s = float(cast(float, record.get("expires", 0.0)))
            entry.lease_granted_s = float(cast(float, record.get("granted", 0.0)))
            # Granting fence N implicitly invalidates every older fence:
            # validity requires fence == entry.fence.
            entry.fence = max(entry.fence, entry.fence + 1 if fence is None else fence)
            entry.last_heartbeat_s = entry.lease_granted_s
            entry.heartbeat_seq = -1
            entry.extensions = 0
        elif event == "heartbeat":
            entry = self._entry(record)
            if entry.terminal or not entry.fence_valid(_record_fence(record)):
                return
            entry.last_heartbeat_s = float(cast(float, record.get("t", 0.0)))
            entry.heartbeat_seq = max(
                entry.heartbeat_seq, int(cast(int, record.get("seq", 0)))
            )
        elif event == "extended":
            entry = self._entry(record)
            if entry.terminal or not entry.fence_valid(_record_fence(record)):
                return
            entry.lease_expires_s = float(cast(float, record.get("expires", 0.0)))
            entry.extensions = max(
                entry.extensions, int(cast(int, record.get("extension", 0)))
            )
        elif event == "reclaimed":
            entry = self._entry(record)
            if entry.terminal:
                return
            fence = _record_fence(record)
            if fence is not None:
                entry.revoked.add(fence)
            if str(record.get("reason")) in RECLAIM_FAULT_REASONS:
                entry.reclaims += 1
            if entry.status is UnitStatus.LEASED and (
                fence is None or fence == entry.fence
            ):
                entry.status = UnitStatus.QUEUED
                entry.lease_owner = None
        elif event == "done":
            entry = self._entry(record)
            if entry.terminal:
                return  # first result wins; ignore duplicates
            if not entry.fence_valid(_record_fence(record)):
                return  # a reclaimed lease's late completion: fenced off
            payload = record.get("result")
            if not isinstance(payload, dict):
                raise CampaignQueueError(
                    f"done record for unit {entry.key!r} has no result payload"
                )
            entry.status = UnitStatus.DONE
            entry.result = UnitResult.from_dict(payload)
        elif event == "failed":
            entry = self._entry(record)
            if entry.terminal:
                return
            if not entry.fence_valid(_record_fence(record)):
                return  # a reclaimed lease's late failure: fenced off
            entry.status = UnitStatus.FAILED
            entry.last_error = cast("str | None", record.get("error"))
            if str(record.get("kind", "crash")) == "died":
                entry.deaths = max(
                    entry.deaths + 1, int(cast(int, record.get("death", 0)))
                )
            else:
                entry.attempts = max(
                    entry.attempts + 1, int(cast(int, record.get("attempt", 0)))
                )
            entry.lease_owner = None
        elif event == "quarantined":
            entry = self._entry(record)
            if entry.status is UnitStatus.DONE:
                return  # a standing result beats a quarantine marker
            entry.status = UnitStatus.QUARANTINED
            entry.reclaims = max(entry.reclaims, int(cast(int, record.get("reclaims", 0))))
            entry.deaths = max(entry.deaths, int(cast(int, record.get("deaths", 0))))
            entry.quarantine_error = cast("str | None", record.get("error"))
            entry.lease_owner = None

    def replay(self, records: list[JournalRecord]) -> None:
        """Apply every record in journal order."""
        for record in records:
            self.apply(record)

    # ------------------------------------------------------------------
    # Live-master mirrors (keep in step with journal appends)
    # ------------------------------------------------------------------
    def lease(
        self, key: str, owner: str, expires_s: float, fence: int, granted_s: float = 0.0
    ) -> None:
        entry = self.units[key]
        entry.status = UnitStatus.LEASED
        entry.lease_owner = owner
        entry.lease_expires_s = expires_s
        entry.lease_granted_s = granted_s
        entry.fence = max(entry.fence, fence)
        entry.last_heartbeat_s = granted_s
        entry.heartbeat_seq = -1
        entry.extensions = 0

    def next_fence(self, key: str) -> int:
        """The fence token the next lease of *key* must carry."""
        return self.units[key].fence + 1

    def observe_heartbeat(self, key: str, fence: int | None, seq: int, t: float) -> None:
        """Fold one heartbeat into the live view (stale fences ignored)."""
        entry = self.units[key]
        if entry.terminal or not entry.fence_valid(fence):
            return
        entry.last_heartbeat_s = max(entry.last_heartbeat_s, t)
        entry.heartbeat_seq = max(entry.heartbeat_seq, seq)

    def extend(self, key: str, expires_s: float, extension: int) -> None:
        entry = self.units[key]
        entry.lease_expires_s = expires_s
        entry.extensions = max(entry.extensions, extension)

    def mark_reclaimed(self, key: str, reason: str) -> int:
        """Fence off the current lease; returns the fault-reclaim count."""
        entry = self.units[key]
        if entry.terminal:
            return entry.reclaims
        entry.revoked.add(entry.fence)
        if reason in RECLAIM_FAULT_REASONS:
            entry.reclaims += 1
        if entry.status is UnitStatus.LEASED:
            entry.status = UnitStatus.QUEUED
            entry.lease_owner = None
        return entry.reclaims

    def mark_done(self, key: str, result: UnitResult, fence: int | None = None) -> bool:
        """Record a completion; False if fenced off or already standing."""
        entry = self.units[key]
        if entry.terminal or not entry.fence_valid(fence):
            return False
        entry.status = UnitStatus.DONE
        entry.result = result
        return True

    def mark_failed(self, key: str, kind: str = "crash", error: str | None = None) -> int:
        """Record a retryable failure; returns the new budget count."""
        entry = self.units[key]
        if entry.terminal:
            return entry.attempts if kind == "crash" else entry.deaths
        entry.status = UnitStatus.FAILED
        entry.last_error = error if error is not None else entry.last_error
        entry.lease_owner = None
        if kind == "died":
            entry.deaths += 1
            return entry.deaths
        entry.attempts += 1
        return entry.attempts

    def mark_quarantined(self, key: str, error: str) -> None:
        """Move a poison unit to its terminal quarantine state."""
        entry = self.units[key]
        if entry.status is UnitStatus.DONE:
            return
        entry.status = UnitStatus.QUARANTINED
        entry.quarantine_error = error
        entry.lease_owner = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def runnable(self, now: float, owner: str, max_attempts: int) -> list[UnitState]:
        """Units *owner* should run next, in canonical index order."""
        ready = [
            entry
            for entry in self.units.values()
            if entry.runnable(now, owner, max_attempts)
        ]
        return sorted(ready, key=lambda entry: entry.index)

    def results(self) -> dict[str, UnitResult]:
        """Every completed unit's standing result, keyed by unit key."""
        return {
            key: entry.result
            for key, entry in self.units.items()
            if entry.status is UnitStatus.DONE and entry.result is not None
        }

    def counts(self) -> dict[str, int]:
        """Units per status (for ``campaign status`` and run summaries)."""
        out = {status.value: 0 for status in UnitStatus}
        for entry in self.units.values():
            out[entry.status.value] += 1
        return out

    @property
    def complete(self) -> bool:
        """Whether every unit has reached a terminal state."""
        return all(entry.terminal for entry in self.units.values())

    def exhausted(self, max_attempts: int) -> list[UnitState]:
        """FAILED units that are out of retry budget, in index order."""
        dead = [
            entry
            for entry in self.units.values()
            if entry.status is UnitStatus.FAILED and entry.attempts >= max_attempts
        ]
        return sorted(dead, key=lambda entry: entry.index)

    def leases(self) -> list[UnitState]:
        """Currently leased units, in index order (the ``status`` view)."""
        held = [
            entry
            for entry in self.units.values()
            if entry.status is UnitStatus.LEASED
        ]
        return sorted(held, key=lambda entry: entry.index)

    def quarantined(self) -> list[UnitState]:
        """Quarantined units, in index order."""
        poisoned = [
            entry
            for entry in self.units.values()
            if entry.status is UnitStatus.QUARANTINED
        ]
        return sorted(poisoned, key=lambda entry: entry.index)
