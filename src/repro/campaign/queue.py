"""Queue state: the journal replayed into per-unit lifecycle records.

The persistent queue is *derived*, never stored: replaying a journal's
records through :meth:`QueueState.apply` reconstructs exactly the state
the dead master had durably recorded, which is what makes ``--resume``
safe after any crash.  The in-memory mirrors (:meth:`QueueState.lease`,
:meth:`QueueState.mark_done`, :meth:`QueueState.mark_failed`) keep a
live master's view in step with what it appends.

Lifecycle::

    QUEUED --lease--> LEASED --done--> DONE        (terminal)
                         |----failed--> FAILED --lease--> ...

``done`` is terminal and first-wins: if a unit is somehow completed
twice (a worker finishing just before its lease is declared dead, then
the re-leased copy finishing too), the first recorded result stands and
the duplicate is ignored -- so the aggregated report never double-counts
a unit no matter how messy the crash history was.

A lease is *runnable again* when it has expired (wall clock) or when it
is owned by a different master incarnation: journals are single-master,
so a foreign owner is by definition a dead one, and resume does not have
to wait out its lease timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import cast

from repro.campaign.journal import JournalRecord
from repro.campaign.units import UnitResult, WorkUnit


class UnitStatus(Enum):
    """Where one unit is in its lifecycle."""

    QUEUED = "queued"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"


@dataclass
class UnitState:
    """One unit's current queue entry."""

    key: str
    index: int
    status: UnitStatus = UnitStatus.QUEUED
    attempts: int = 0
    lease_owner: str | None = None
    lease_expires_s: float = 0.0
    result: UnitResult | None = None

    def runnable(self, now: float, owner: str, max_attempts: int) -> bool:
        """Whether *owner* may (re-)lease this unit at time *now*."""
        if self.status is UnitStatus.QUEUED:
            return True
        if self.status is UnitStatus.FAILED:
            return self.attempts < max_attempts
        if self.status is UnitStatus.LEASED:
            return self.lease_owner != owner or self.lease_expires_s <= now
        return False  # DONE is terminal


class CampaignQueueError(ValueError):
    """Raised when journal records do not fit the campaign's unit set."""


@dataclass
class QueueState:
    """Every unit's state, derived from (and mirrored ahead of) the journal."""

    units: dict[str, UnitState] = field(default_factory=dict)

    @staticmethod
    def for_units(units: tuple[WorkUnit, ...] | list[WorkUnit]) -> "QueueState":
        """A fresh queue with every unit QUEUED."""
        return QueueState(
            units={unit.key: UnitState(key=unit.key, index=unit.index) for unit in units}
        )

    def _entry(self, record: JournalRecord) -> UnitState:
        key = str(record.get("unit"))
        entry = self.units.get(key)
        if entry is None:
            raise CampaignQueueError(
                f"journal references unknown unit {key!r} "
                "(spec/seed mismatch with the journal header?)"
            )
        return entry

    def apply(self, record: JournalRecord) -> None:
        """Replay one journal record into the state (non-unit events no-op)."""
        event = record.get("event")
        if event == "queued":
            self._entry(record)  # validates the key; QUEUED is the initial state
        elif event == "leased":
            entry = self._entry(record)
            if entry.status is UnitStatus.DONE:
                return
            entry.status = UnitStatus.LEASED
            entry.lease_owner = str(record.get("worker"))
            entry.lease_expires_s = float(cast(float, record.get("expires", 0.0)))
        elif event == "done":
            entry = self._entry(record)
            if entry.status is UnitStatus.DONE:
                return  # first result wins; ignore duplicates
            entry.status = UnitStatus.DONE
            payload = record.get("result")
            if not isinstance(payload, dict):
                raise CampaignQueueError(
                    f"done record for unit {entry.key!r} has no result payload"
                )
            entry.result = UnitResult.from_dict(payload)
        elif event == "failed":
            entry = self._entry(record)
            if entry.status is UnitStatus.DONE:
                return
            entry.status = UnitStatus.FAILED
            entry.attempts = max(entry.attempts + 1, int(cast(int, record.get("attempt", 0))))
            entry.lease_owner = None

    def replay(self, records: list[JournalRecord]) -> None:
        """Apply every record in journal order."""
        for record in records:
            self.apply(record)

    # ------------------------------------------------------------------
    # Live-master mirrors (keep in step with journal appends)
    # ------------------------------------------------------------------
    def lease(self, key: str, owner: str, expires_s: float) -> None:
        entry = self.units[key]
        entry.status = UnitStatus.LEASED
        entry.lease_owner = owner
        entry.lease_expires_s = expires_s

    def mark_done(self, key: str, result: UnitResult) -> bool:
        """Record a completion; False if a prior result already stands."""
        entry = self.units[key]
        if entry.status is UnitStatus.DONE:
            return False
        entry.status = UnitStatus.DONE
        entry.result = result
        return True

    def mark_failed(self, key: str) -> int:
        """Record a retryable crash; returns the new attempt count."""
        entry = self.units[key]
        if entry.status is UnitStatus.DONE:
            return entry.attempts
        entry.status = UnitStatus.FAILED
        entry.attempts += 1
        entry.lease_owner = None
        return entry.attempts

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def runnable(self, now: float, owner: str, max_attempts: int) -> list[UnitState]:
        """Units *owner* should run next, in canonical index order."""
        ready = [
            entry
            for entry in self.units.values()
            if entry.runnable(now, owner, max_attempts)
        ]
        return sorted(ready, key=lambda entry: entry.index)

    def results(self) -> dict[str, UnitResult]:
        """Every completed unit's standing result, keyed by unit key."""
        return {
            key: entry.result
            for key, entry in self.units.items()
            if entry.status is UnitStatus.DONE and entry.result is not None
        }

    def counts(self) -> dict[str, int]:
        """Units per status (for ``campaign status`` and run summaries)."""
        out = {status.value: 0 for status in UnitStatus}
        for entry in self.units.values():
            out[entry.status.value] += 1
        return out

    @property
    def complete(self) -> bool:
        """Whether every unit has a standing result."""
        return all(entry.status is UnitStatus.DONE for entry in self.units.values())

    def exhausted(self, max_attempts: int) -> list[UnitState]:
        """FAILED units that are out of retry budget, in index order."""
        dead = [
            entry
            for entry in self.units.values()
            if entry.status is UnitStatus.FAILED and entry.attempts >= max_attempts
        ]
        return sorted(dead, key=lambda entry: entry.index)
