"""Work units: one frozen, seed-stamped scenario cell and its executor.

A :class:`WorkUnit` is the campaign's unit of work -- the
``_SweepContext`` idea generalized: everything one scenario cell needs,
frozen in the master before any worker runs, carrying its own
spawn-keyed seed so the result is a pure function of the unit itself.
:func:`execute_unit` runs a unit through the existing entry points
(:func:`repro.core.pipeline.run_link`,
:func:`~repro.core.pipeline.run_transport_link`,
:func:`repro.serve.fanout.run_fleet`) and returns a
:class:`UnitResult`: a flat statistics row plus the run's serialized
:class:`~repro.obs.RunTelemetry`, which the master folds through the
exact-merge :mod:`repro.obs` registry.

Deterministically *invalid* cells (a config rejecting a swept value, a
malformed embedded spec) return ``ok=False, retryable=False`` -- they
are part of the matrix and land in the report like any other unit.
Only unexpected crashes are marked retryable by the master's dispatch
wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, cast

from repro._util import stable_seed
from repro.obs import RunTelemetry
from repro.obs.telemetry import TelemetryDict

if TYPE_CHECKING:  # imported lazily at run time to keep import cost low
    from repro.analysis.experiments import ExperimentScale
    from repro.camera.capture import CameraModel
    from repro.core.config import InFrameConfig
    from repro.faults.plan import FaultPlan

#: Entry points a unit may execute through.
WORKLOADS = ("link", "transport", "fleet")
#: Transport schemes the ``transport`` workload accepts.
TRANSPORT_MODES = ("plain", "fountain", "arq", "carousel")

#: The camera model's legal screen-fill range (mirrors ``serve.cohort``).
_MIN_FILL = 0.05
_MAX_FILL = 1.0

#: Fleet-workload defaults when the spec gives no parameters.
_FLEET_DEFAULTS = {"n": 4.0, "distance": 1.0, "dwell": 2.5}
#: Transport-workload default forward-pass bound.
_TRANSPORT_ROUNDS = 3


@dataclass(frozen=True)
class WorkUnit:
    """One scenario cell, fully resolved and schedulable anywhere.

    Attributes
    ----------
    index, key:
        Position in the canonical expansion and the canonical axis
        assignment string (``workload=link|video=gray|tau=8|...``) --
        the unit's identity in journals and reports.
    workload:
        Which entry point runs the cell (``link``/``transport``/``fleet``).
    seed, fault_seed:
        The unit's own spawn keys (``stable_seed(campaign seed, key)``);
        nothing about the result depends on any other unit.
    replicates:
        Spawn-keyed repeat count (the ``seeds`` parameter); replicate
        *r* runs at ``stable_seed(seed, r)`` and rows report the pooled
        means.
    config_overrides, camera_overrides:
        Swept ``InFrameConfig`` fields and camera reshapes
        (``exposure_s``, ``distance``), as ``(name, value)`` pairs.
    faults_spec:
        The unit's fault plan in the native ``--faults`` grammar, or
        ``None``.
    heal:
        Self-healing decode: True/False, or ``None`` for "exactly when
        faulted".
    payload_bytes, transport_mode, workload_params:
        Transport/fleet workload shape.
    """

    index: int
    key: str
    workload: str
    scale: str
    video: str
    seed: int
    fault_seed: int
    replicates: int = 1
    config_overrides: tuple[tuple[str, float], ...] = ()
    camera_overrides: tuple[tuple[str, float], ...] = ()
    faults_spec: str | None = None
    heal: bool | None = None
    payload_bytes: int = 64
    transport_mode: str = "fountain"
    workload_params: tuple[tuple[str, float], ...] = ()

    def params(self) -> dict[str, float]:
        """Every swept assignment of this unit (for report rows)."""
        out = dict(self.config_overrides)
        out.update(self.camera_overrides)
        if self.replicates != 1:
            out["seeds"] = float(self.replicates)
        return out


@dataclass(frozen=True)
class UnitResult:
    """What one executed unit produced (JSON round-trippable).

    ``row`` is the unit's flat statistics (floats keyed by stat name);
    ``telemetry`` is the run's serialized
    :class:`~repro.obs.RunTelemetry`.  ``ok=False, retryable=False``
    marks a deterministic failure (invalid cell) that belongs in the
    report; ``retryable=True`` marks a crash the master may re-lease.
    """

    index: int
    key: str
    ok: bool
    row: dict[str, float] = field(default_factory=dict)
    telemetry: TelemetryDict | None = None
    error: str | None = None
    retryable: bool = False

    def as_dict(self) -> dict[str, object]:
        """Plain-JSON form (the journal's ``done`` record payload)."""
        return {
            "index": self.index,
            "key": self.key,
            "ok": self.ok,
            "row": dict(self.row),
            "telemetry": self.telemetry,
            "error": self.error,
            "retryable": self.retryable,
        }

    @staticmethod
    def from_dict(payload: dict[str, object]) -> "UnitResult":
        """Rebuild a result from :meth:`as_dict` output."""
        row = cast("dict[str, float]", payload.get("row") or {})
        return UnitResult(
            index=int(cast(int, payload["index"])),
            key=str(payload["key"]),
            ok=bool(payload["ok"]),
            row={str(k): float(v) for k, v in row.items()},
            telemetry=cast("TelemetryDict | None", payload.get("telemetry")),
            error=cast("str | None", payload.get("error")),
            retryable=bool(payload.get("retryable", False)),
        )


def execute_unit(unit: WorkUnit) -> UnitResult:  # checks: worker-scope
    """Run one unit through its entry point; never raises for bad cells.

    Replicates run at spawn-derived seeds and are pooled by plain means
    (computed in replicate order, so the row is deterministic).  A
    ``ValueError`` from config/spec validation is a property of the
    cell, not of the execution, and returns a non-retryable failure.
    """
    try:
        rows: list[dict[str, float]] = []
        telemetries: list[RunTelemetry | None] = []
        for rep in range(unit.replicates):
            rep_seed = unit.seed if unit.replicates == 1 else stable_seed(unit.seed, rep)
            rep_fault_seed = (
                unit.fault_seed
                if unit.replicates == 1
                else stable_seed(unit.fault_seed, rep)
            )
            row, telemetry = _run_replicate(unit, rep_seed, rep_fault_seed)
            rows.append(row)
            telemetries.append(telemetry)
    except ValueError as exc:  # includes FaultSpecError / CohortSpecError
        return UnitResult(
            index=unit.index,
            key=unit.key,
            ok=False,
            error=str(exc),
            retryable=False,
        )
    merged = RunTelemetry.merge(telemetries)
    return UnitResult(
        index=unit.index,
        key=unit.key,
        ok=True,
        row=_pool_rows(rows),
        telemetry=merged.as_dict() if merged is not None else None,
    )


def _pool_rows(rows: list[dict[str, float]]) -> dict[str, float]:
    """Replicate rows pooled into one (plain means, replicate order)."""
    if len(rows) == 1:
        return dict(rows[0])
    pooled: dict[str, float] = {}
    for name in rows[0]:
        pooled[name] = sum(row[name] for row in rows) / len(rows)
    return pooled


def _run_replicate(
    unit: WorkUnit, seed: int, fault_seed: int
) -> tuple[dict[str, float], RunTelemetry | None]:
    """One replicate through the unit's entry point."""
    from repro.analysis.experiments import ExperimentScale
    from repro.faults.plan import FaultPlan

    if unit.workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload {unit.workload!r} (known: {', '.join(WORKLOADS)})"
        )
    scale_factory = getattr(ExperimentScale, unit.scale, None)
    if scale_factory is None:
        raise ValueError(f"unknown scale {unit.scale!r} (quick, benchmark, full)")
    scale = scale_factory()
    overrides = {name: value for name, value in unit.config_overrides}
    for name in ("tau", "pixels_per_block"):
        if name in overrides:
            overrides[name] = int(overrides[name])
    config = scale.config().with_updates(**overrides)
    camera = scale.camera()
    for name, value in unit.camera_overrides:
        if name == "exposure_s":
            camera = replace(camera, exposure_s=float(value))
        elif name == "distance":
            fill = min(max(camera.screen_fill / float(value), _MIN_FILL), _MAX_FILL)
            camera = replace(camera, screen_fill=fill)
    faults = (
        FaultPlan.parse(unit.faults_spec, seed=fault_seed)
        if unit.faults_spec
        else None
    )
    if unit.workload == "link":
        return _run_link_replicate(unit, scale, config, camera, faults, seed)
    if unit.workload == "transport":
        return _run_transport_replicate(unit, scale, config, camera, faults, seed)
    return _run_fleet_replicate(unit, scale, config, camera, seed)


def _run_link_replicate(
    unit: WorkUnit,
    scale: ExperimentScale,
    config: InFrameConfig,
    camera: CameraModel,
    faults: FaultPlan | None,
    seed: int,
) -> tuple[dict[str, float], RunTelemetry | None]:
    from repro.core.pipeline import run_link

    run = run_link(
        config,
        scale.video(unit.video),
        camera=camera,
        seed=seed,
        faults=faults,
        heal=unit.heal,
        collect_telemetry=True,
    )
    stats = run.stats
    row = {
        "available": float(stats.available_gob_ratio),
        "error_rate": float(stats.gob_error_rate),
        "bit_accuracy": float(stats.bit_accuracy),
        "throughput_kbps": float(stats.throughput_kbps),
    }
    return row, run.telemetry


def _run_transport_replicate(
    unit: WorkUnit,
    scale: ExperimentScale,
    config: InFrameConfig,
    camera: CameraModel,
    faults: FaultPlan | None,
    seed: int,
) -> tuple[dict[str, float], RunTelemetry | None]:
    from repro.core.pipeline import run_transport_link
    from repro.serve.session import deterministic_payload

    params = dict(unit.workload_params)
    run = run_transport_link(
        config,
        scale.video(unit.video),
        deterministic_payload(unit.payload_bytes, seed=seed),
        mode=unit.transport_mode,
        camera=camera,
        seed=seed,
        max_rounds=int(params.get("rounds", _TRANSPORT_ROUNDS)),
        faults=faults,
        heal=unit.heal,
        collect_telemetry=True,
    )
    stats = run.stats
    row = {
        "delivered": 1.0 if stats.delivered else 0.0,
        "rounds": float(stats.rounds),
        "overhead": float(stats.overhead),
        "goodput_kbps": float(stats.goodput_bps) / 1000.0,
    }
    return row, run.telemetry


def _run_fleet_replicate(
    unit: WorkUnit,
    scale: ExperimentScale,
    config: InFrameConfig,
    camera: CameraModel,
    seed: int,
) -> tuple[dict[str, float], RunTelemetry | None]:
    from repro.serve.cohort import parse_cohorts
    from repro.serve.fanout import run_fleet
    from repro.serve.session import BroadcastSession, deterministic_payload

    params = {**_FLEET_DEFAULTS, **dict(unit.workload_params)}
    spec = (
        f"unit:n={int(params['n'])},join_spread=0.5,"
        f"dwell={params['dwell']:g},distance={params['distance']:g}"
    )
    if unit.faults_spec:
        spec += ",faults=" + unit.faults_spec.replace(";", "/").replace(",", "+")
    if unit.heal is not None:
        spec += f",heal={int(unit.heal)}"
    cohorts = parse_cohorts(spec, seed=unit.fault_seed)
    payload = deterministic_payload(unit.payload_bytes, seed=seed)
    with BroadcastSession(config, scale.video(unit.video), payload) as session:
        fleet = run_fleet(session, cohorts, base_camera=camera, seed=seed)
    report = fleet.report
    row = {
        "receivers": float(report.receivers),
        "delivered": float(report.delivered),
        "delivery_rate": float(report.delivery_rate),
        "reuse_ratio": float(report.reuse_ratio),
    }
    return row, fleet.telemetry
