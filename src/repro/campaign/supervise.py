"""Lease supervision: heartbeats, health classification, reclamation.

A wall-clock lease timeout alone cannot tell a *slow* worker from a
*stuck* one: a SIGSTOPped (or deadlocked, or swapping) worker holds its
lease until the timeout fires, stalling the campaign for minutes over a
fault that is detectable in seconds.  Supervision closes that gap with
three cooperating pieces:

* :class:`HeartbeatEmitter` -- a worker-side daemon thread that appends
  ``heartbeat`` records (per-lease ``seq`` numbers, emitting pid, wall
  time) to the journal while a unit executes.  Heartbeats are advisory:
  they never change queue state, and a torn heartbeat line is skipped on
  replay (:func:`~repro.campaign.journal.salvage_torn_line`).
* :class:`JournalTail` -- the master's incremental reader over the same
  file, consuming only newline-complete records so a heartbeat being
  written this instant is simply picked up next poll.
* :class:`Supervisor` -- classifies every in-flight lease as **LIVE**
  (fresh heartbeats), **SLOW** (heartbeating, but past its soft
  deadline -- the lease is *extended* with bounded exponential backoff),
  or **STUCK** (heartbeat-stale -- the lease is *fenced and reclaimed
  immediately*, no wall-timeout wait).  Decisions are returned to the
  master, which journals them; the supervisor never writes.

The classification rule, given ``policy``::

    beating lease:  STUCK iff now - last heartbeat > policy.stuck_after_s
    silent lease:   STUCK iff now - lease granted  > policy.first_beat_grace_s
    otherwise:      SLOW  iff now - lease granted  > current soft deadline
                    LIVE  else

A lease that has never heartbeated is *not* judged on the tight
staleness clock: the unit may simply be waiting for a free pool worker
(leases are granted at dispatch, execution starts when a worker picks
the unit up), and a slow worker spawn looks identical to a dead one.
Such leases get the more generous first-beat grace, and their reclaim
reason is ``unstarted`` -- not counted toward quarantine, because the
silence proves nothing about the unit.  A worker that dies before its
first beat is additionally caught by the engine's pool-crash path
(``failed kind="died"``), and the wall-clock lease timeout remains the
backstop of last resort.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from enum import Enum
from pathlib import Path

from repro.campaign.journal import CampaignJournal, JournalRecord

#: ``chaos(unit_index, seq) -> (emit, delay_s)`` -- lets the chaos
#: harness drop or delay heartbeats inside a worker (see
#: :func:`repro.campaign.chaos.heartbeat_filter_from_env`).
HeartbeatFilter = Callable[[int, int], tuple[bool, float]]


class LeaseHealth(Enum):
    """The supervisor's verdict on one in-flight lease."""

    LIVE = "live"
    SLOW = "slow"
    STUCK = "stuck"


@dataclass(frozen=True)
class SupervisePolicy:
    """The knobs of the supervision loop.

    Attributes
    ----------
    heartbeat_s:
        Interval at which workers append ``heartbeat`` records mid-unit.
    stuck_after_s:
        Heartbeat staleness that makes a lease STUCK.  Must comfortably
        exceed ``heartbeat_s`` (a missed beat is not a stuck worker);
        :meth:`resolve` defaults it to ``4 x heartbeat_s``.
    first_beat_grace_s:
        Lease age at which a lease that never heartbeated is reclaimed
        (reason ``unstarted``).  Defaults to ``4 x stuck_after_s`` --
        generous, because a unit waiting for a free pool worker is
        silent and innocent.
    soft_deadline_s:
        Lease age past which a still-heartbeating lease is SLOW and gets
        extended; defaults to a quarter of the hard lease timeout.
    max_extensions:
        Bound on extensions per lease.  Extension *n* pushes the hard
        expiry out by ``soft_deadline_s * 2**n`` -- bounded exponential
        backoff; after the last extension the hard timeout is final.
    quarantine_after:
        A unit whose lease was reclaimed this many times, or whose
        worker died this many times, is quarantined (poison unit).
    tick_s:
        How often the master polls the journal tail and re-classifies.
    """

    heartbeat_s: float = 1.0
    stuck_after_s: float = 4.0
    first_beat_grace_s: float = 16.0
    soft_deadline_s: float = 150.0
    max_extensions: int = 3
    quarantine_after: int = 3
    tick_s: float = 0.25

    @classmethod
    def resolve(
        cls,
        *,
        heartbeat_s: float = 1.0,
        stuck_after_s: float | None = None,
        first_beat_grace_s: float | None = None,
        soft_deadline_s: float | None = None,
        max_extensions: int = 3,
        quarantine_after: int = 3,
        lease_timeout_s: float = 600.0,
        tick_s: float | None = None,
    ) -> "SupervisePolicy":
        """Fill the derived defaults and validate the relationships."""
        if heartbeat_s <= 0.0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        if stuck_after_s is None:
            stuck_after_s = 4.0 * heartbeat_s
        if stuck_after_s <= heartbeat_s:
            raise ValueError(
                f"stuck_after_s ({stuck_after_s}) must exceed heartbeat_s "
                f"({heartbeat_s}): one missed beat is not a stuck worker"
            )
        if stuck_after_s >= lease_timeout_s:
            raise ValueError(
                f"stuck_after_s ({stuck_after_s}) must be below the hard "
                f"lease timeout ({lease_timeout_s}); otherwise supervision "
                "never beats the wall clock"
            )
        if first_beat_grace_s is None:
            first_beat_grace_s = 4.0 * stuck_after_s
        if first_beat_grace_s < stuck_after_s:
            raise ValueError(
                f"first_beat_grace_s ({first_beat_grace_s}) must be >= "
                f"stuck_after_s ({stuck_after_s}): silence before the first "
                "beat proves less, not more"
            )
        if soft_deadline_s is None:
            soft_deadline_s = lease_timeout_s / 4.0
        if quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {quarantine_after}")
        if tick_s is None:
            tick_s = max(min(heartbeat_s / 2.0, 1.0), 0.02)
        return cls(
            heartbeat_s=float(heartbeat_s),
            stuck_after_s=float(stuck_after_s),
            first_beat_grace_s=float(first_beat_grace_s),
            soft_deadline_s=float(soft_deadline_s),
            max_extensions=int(max_extensions),
            quarantine_after=int(quarantine_after),
            tick_s=float(tick_s),
        )


def classify_lease(
    now: float,
    granted_s: float,
    last_heartbeat_s: float,
    policy: SupervisePolicy,
    *,
    has_beats: bool = True,
) -> LeaseHealth:
    """The pure classification rule (see module docstring)."""
    if has_beats:
        if now - max(granted_s, last_heartbeat_s) > policy.stuck_after_s:
            return LeaseHealth.STUCK
    elif now - granted_s > policy.first_beat_grace_s:
        return LeaseHealth.STUCK
    if now - granted_s > policy.soft_deadline_s:
        return LeaseHealth.SLOW
    return LeaseHealth.LIVE


@dataclass
class LeaseTracker:
    """The supervisor's view of one in-flight lease."""

    key: str
    index: int
    fence: int
    granted_s: float
    expires_s: float
    last_heartbeat_s: float
    heartbeat_seq: int = -1
    extensions: int = 0
    next_soft_s: float = 0.0

    def health(self, now: float, policy: SupervisePolicy) -> LeaseHealth:
        return classify_lease(
            now, self.granted_s, self.last_heartbeat_s, policy,
            has_beats=self.heartbeat_seq >= 0,
        )


@dataclass(frozen=True)
class Extend:
    """Decision: push a SLOW lease's hard expiry out (bounded backoff)."""

    key: str
    index: int
    fence: int
    expires_s: float
    extension: int


@dataclass(frozen=True)
class Reclaim:
    """Decision: fence a STUCK lease and make the unit runnable now."""

    key: str
    index: int
    fence: int
    reason: str = "stuck"


class Supervisor:
    """Classifies tracked leases and emits extend/reclaim decisions.

    The supervisor holds no journal handle and appends nothing: the
    master feeds it heartbeats (:meth:`observe`), asks for decisions
    (:meth:`decide`), and journals what it chooses to honor.  That keeps
    the journal single-writer for state transitions and makes the
    supervisor trivially unit-testable with synthetic clocks.
    """

    def __init__(self, policy: SupervisePolicy) -> None:
        self.policy = policy
        self.leases: dict[str, LeaseTracker] = {}

    def track(
        self, key: str, index: int, fence: int, granted_s: float, expires_s: float
    ) -> None:
        """Start supervising a just-granted lease."""
        self.leases[key] = LeaseTracker(
            key=key,
            index=index,
            fence=fence,
            granted_s=granted_s,
            expires_s=expires_s,
            last_heartbeat_s=granted_s,
            next_soft_s=granted_s + self.policy.soft_deadline_s,
        )

    def untrack(self, key: str) -> None:
        """Stop supervising (the unit completed, failed, or was reclaimed)."""
        self.leases.pop(key, None)

    def observe(self, record: JournalRecord) -> bool:
        """Fold one journal record into the tracked view.

        Only ``heartbeat`` records for a currently tracked lease with a
        matching fence count; everything else is ignored.  Returns
        whether the record advanced a tracked lease.
        """
        if record.get("event") != "heartbeat":
            return False
        lease = self.leases.get(str(record.get("unit")))
        if lease is None:
            return False
        fence = record.get("fence")
        if fence is not None and int(fence) != lease.fence:  # type: ignore[call-overload]
            return False  # a fenced-off incarnation's late beat
        t = float(record.get("t", 0.0))  # type: ignore[arg-type]
        seq = int(record.get("seq", 0))  # type: ignore[call-overload]
        lease.last_heartbeat_s = max(lease.last_heartbeat_s, t)
        lease.heartbeat_seq = max(lease.heartbeat_seq, seq)
        return True

    def classify(self, now: float) -> dict[str, LeaseHealth]:
        """Health of every tracked lease at time *now* (keyed by unit)."""
        return {
            key: lease.health(now, self.policy) for key, lease in self.leases.items()
        }

    def health_counts(self, now: float) -> dict[str, int]:
        """How many tracked leases are live / slow / stuck at time *now*.

        The campaign master records these into the live telemetry
        side-channel each tick; the snapshot stream is what lets
        ``repro.tools.watch`` draw fleet health without replaying the
        journal itself.
        """
        counts = {health.value: 0 for health in LeaseHealth}
        for lease in self.leases.values():
            counts[lease.health(now, self.policy).value] += 1
        return counts

    def decide(self, now: float) -> list[Extend | Reclaim]:
        """Extend the SLOW, reclaim the STUCK; updates tracker state.

        Decisions come back in lease index order so the journal record
        sequence is deterministic given the same classification outcome.
        """
        decisions: list[Extend | Reclaim] = []
        for key in sorted(self.leases, key=lambda k: self.leases[k].index):
            lease = self.leases[key]
            health = lease.health(now, self.policy)
            if health is LeaseHealth.STUCK:
                # A lease that never beat is reclaimed as `unstarted`,
                # which does not count toward quarantine: the silence
                # indicts the worker slot, not the unit.
                reason = "stuck" if lease.heartbeat_seq >= 0 else "unstarted"
                decisions.append(
                    Reclaim(key=key, index=lease.index, fence=lease.fence,
                            reason=reason)
                )
                continue
            if (
                health is LeaseHealth.SLOW
                and now >= lease.next_soft_s
                and lease.extensions < self.policy.max_extensions
            ):
                lease.extensions += 1
                backoff = self.policy.soft_deadline_s * (2.0 ** lease.extensions)
                lease.expires_s += backoff
                lease.next_soft_s = now + backoff
                decisions.append(
                    Extend(
                        key=key,
                        index=lease.index,
                        fence=lease.fence,
                        expires_s=lease.expires_s,
                        extension=lease.extensions,
                    )
                )
        for decision in decisions:
            if isinstance(decision, Reclaim):
                self.untrack(decision.key)
        return decisions


# ----------------------------------------------------------------------
# Worker side: the heartbeat emitter
# ----------------------------------------------------------------------
class HeartbeatEmitter:
    """A daemon thread appending ``heartbeat`` records while a unit runs.

    The first beat (``seq`` 0) is emitted immediately on :meth:`start`,
    so the supervisor (and the chaos harness, which learns worker pids
    from heartbeats) sees a lease come alive without waiting a full
    interval.  Journal trouble (disk full, unlinked path) is swallowed:
    losing heartbeats degrades supervision to the wall-clock timeout, it
    must never fail the unit.
    """

    def __init__(
        self,
        journal_path: str | Path,
        *,
        key: str,
        index: int,
        fence: int,
        worker: str,
        interval_s: float,
        chaos: HeartbeatFilter | None = None,
    ) -> None:
        self.journal = CampaignJournal(journal_path)
        self.key = key
        self.index = index
        self.fence = fence
        self.worker = worker
        self.interval_s = float(interval_s)
        self.chaos = chaos
        self.emitted = 0
        self._seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _beat(self) -> None:
        seq = self._seq
        self._seq += 1
        if self.chaos is not None:
            emit, delay_s = self.chaos(self.index, seq)
            if delay_s > 0.0:
                self._stop.wait(delay_s)
            if not emit:
                return
        try:
            self.journal.append(
                {
                    "event": "heartbeat",
                    "unit": self.key,
                    "index": self.index,
                    "fence": self.fence,
                    "seq": seq,
                    "worker": self.worker,
                    "pid": os.getpid(),
                    "t": time.time(),
                }
            )
            self.emitted += 1
        except OSError:
            pass  # advisory record; never fail the unit over it

    def _run(self) -> None:
        while not self._stop.is_set():
            self._beat()
            self._stop.wait(self.interval_s)

    def start(self) -> "HeartbeatEmitter":
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{self.index}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HeartbeatEmitter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Master side: the incremental journal reader
# ----------------------------------------------------------------------
class JournalTail:
    """Incremental reader over a journal another process is appending to.

    Consumes only newline-complete lines: a record being written this
    instant stays in the file until the next :meth:`poll`.  Unparseable
    complete lines (a torn heartbeat a later append ran into) are
    counted in :attr:`skipped` and dropped -- the authoritative
    torn-line policy lives in :meth:`CampaignJournal.read`; the tail
    only ever feeds the advisory supervision path.
    """

    def __init__(self, path: str | Path, *, start_at_end: bool = False) -> None:
        self.path = Path(path)
        self.offset = 0
        self.skipped = 0
        if start_at_end:
            try:
                self.offset = self.path.stat().st_size
            except OSError:
                self.offset = 0

    def poll(self) -> list[JournalRecord]:
        """Every complete record appended since the last poll."""
        import json

        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                chunk = handle.read()
        except OSError:
            return []
        if not chunk:
            return []
        end = chunk.rfind(b"\n")
        if end < 0:
            return []  # nothing newline-complete yet
        self.offset += end + 1
        records: list[JournalRecord] = []
        for line in chunk[: end + 1].splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                self.skipped += 1
                continue
            if isinstance(payload, dict):
                records.append(payload)
            else:
                self.skipped += 1
        return records
