"""The campaign journal: an append-only JSONL log of queue transitions.

One campaign owns one journal file.  Every state transition -- the
campaign header, master incarnations, ``queued``/``leased``/``done``/
``failed`` unit records -- is one JSON object on its own line, flushed
and fsynced before :meth:`CampaignJournal.append` returns.  Nothing is
ever rewritten, so any crash (including ``SIGKILL``) leaves a valid
prefix of complete records plus at most one torn final line.

:meth:`CampaignJournal.read` tolerates exactly that shape: a partial
*final* line is ignored and reported via ``torn_tail`` (the transition
it was recording simply never happened, and resume re-derives the
queue state without it).  A malformed line anywhere *before* the end is
not a crash signature -- it means the file was edited or the storage
corrupted -- and raises :class:`CampaignJournalError` rather than
silently dropping history.

Record shapes (the ``event`` field discriminates):

``campaign``
    The header -- first record of every journal.  Carries ``format``
    (:data:`JOURNAL_FORMAT`), the spec string, expansion options
    (``scale``/``seed``/``payload_bytes``/``fault_seed``), queue policy
    (``lease_timeout_s``/``max_attempts``), the unit count, and the
    campaign ``fingerprint`` that resume validates.
``master``
    A master incarnation starting (fresh or resumed), with its id.
``queued``
    One unit entering the queue (``unit`` key + ``index``).
``leased``
    A lease grant: ``unit``, the owning incarnation, and the wall-clock
    ``expires`` time after which the lease is considered dead.
``done``
    Terminal: ``unit`` plus the full serialized
    :meth:`~repro.campaign.units.UnitResult.as_dict` payload.
``failed``
    A retryable crash: ``unit``, the ``error`` text, and the attempt
    number; the unit may be re-leased until ``max_attempts``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

#: Journal format tag written into (and checked against) the header.
JOURNAL_FORMAT = "repro.campaign/1"

#: Record payload: one JSON object per journal line.
JournalRecord = dict[str, object]


class CampaignJournalError(ValueError):
    """Raised for journals that are corrupt beyond the torn-tail shape."""


@dataclass(frozen=True)
class JournalContents:
    """Everything :meth:`CampaignJournal.read` recovered from disk."""

    records: list[JournalRecord] = field(default_factory=list)
    torn_tail: bool = False

    @property
    def header(self) -> JournalRecord | None:
        """The campaign header record, if the journal has one."""
        if self.records and self.records[0].get("event") == "campaign":
            return self.records[0]
        return None


class CampaignJournal:
    """One campaign's append-only JSONL transition log.

    The journal is opened, appended, flushed, fsynced, and closed per
    record: slower than a held handle, but every completed ``append``
    survives any subsequent crash, and masters/resumes never contend
    over a shared file position.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @property
    def exists(self) -> bool:
        """Whether the journal already holds at least one byte."""
        try:
            return self.path.stat().st_size > 0
        except OSError:
            return False

    def append(self, record: JournalRecord) -> None:
        """Durably append one record (canonical JSON, own line)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def read(self) -> JournalContents:
        """Parse the journal, tolerating a crash-torn final line.

        Raises :class:`CampaignJournalError` if the file is missing, the
        first record is not a :data:`JOURNAL_FORMAT` header, or any line
        other than the last fails to parse (mid-file corruption is not a
        crash signature and must not be silently dropped).
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CampaignJournalError(f"cannot read journal {self.path}: {exc}") from exc
        records: list[JournalRecord] = []
        torn_tail = False
        lines = text.split("\n")
        # A well-formed journal ends with "\n", so split() yields a final
        # empty string; anything else after the last newline is a torn tail
        # unless it happens to parse as a complete record (flushed but
        # killed between write and the trailing-newline -- impossible with
        # our single-write append, so a bare valid JSON tail still counts).
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines) - 1:
                    torn_tail = True
                    continue
                raise CampaignJournalError(
                    f"journal {self.path} is corrupt at line {lineno + 1}: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise CampaignJournalError(
                    f"journal {self.path} line {lineno + 1} is not an object"
                )
            records.append(payload)
        if not records:
            raise CampaignJournalError(f"journal {self.path} is empty")
        header = records[0]
        if header.get("event") != "campaign":
            raise CampaignJournalError(
                f"journal {self.path} does not start with a campaign header"
            )
        if header.get("format") != JOURNAL_FORMAT:
            raise CampaignJournalError(
                f"journal {self.path} has unsupported format "
                f"{header.get('format')!r} (expected {JOURNAL_FORMAT!r})"
            )
        return JournalContents(records=records, torn_tail=torn_tail)
