"""The campaign journal: an append-only JSONL log of queue transitions.

One campaign owns one journal file.  Every state transition -- the
campaign header, master incarnations, ``queued``/``leased``/``done``/
``failed``/``reclaimed``/``quarantined``/``drained`` unit records -- is
one JSON object on its own line, flushed and fsynced before
:meth:`CampaignJournal.append` returns.  Nothing is ever rewritten, so
any crash (including ``SIGKILL``) leaves a valid prefix of complete
records plus at most one torn final line.

Two writer roles share the file.  The **master** is the only writer of
state transitions; **workers** additionally append ``heartbeat`` records
mid-unit (advisory liveness, never a state transition).  Both append
whole lines with a single ``write`` on an append-mode handle, so lines
never interleave -- but a worker dying mid-append can leave a partial
*heartbeat* line that later master appends then follow.  That is why the
torn-line policy is record-aware:

* a torn **final** line is the primary legal crash signature and is
  ignored (``torn_tail``);
* a torn **heartbeat** line mid-file (identified by its ``{"event":
  "heartbeat"`` prefix) is skipped with a warning -- heartbeats are
  append-frequency hot and advisory, losing one is harmless.  If a
  complete record was appended onto the same line (the dying worker
  never wrote its newline), the embedded record is salvaged;
* a torn **master** record mid-file is legal exactly when everything
  after it is worker output: the master died mid-append and its
  orphaned workers kept heartbeating.  Requires every later record
  (including one salvaged off the torn line itself) to be a
  ``heartbeat``; counts as ``torn_tail`` because the interrupted state
  transition was lost;
* any other malformed mid-file line is not a crash signature -- it means
  the file was edited or the storage corrupted -- and raises
  :class:`CampaignJournalError` rather than silently dropping history.

Record shapes (the ``event`` field discriminates):

``campaign``
    The header -- first record of every journal.  Carries ``format``
    (:data:`JOURNAL_FORMAT`), the spec string, expansion options
    (``scale``/``seed``/``payload_bytes``/``fault_seed``), queue policy
    (``lease_timeout_s``/``max_attempts``), the unit count, and the
    campaign ``fingerprint`` that resume validates.
``master``
    A master incarnation starting (fresh or resumed), with its id.
``queued``
    One unit entering the queue (``unit`` key + ``index``).
``leased``
    A lease grant: ``unit``, the owning incarnation, the wall-clock
    ``granted``/``expires`` times, and the lease's ``fence`` token (a
    per-unit monotonic integer; see :mod:`repro.campaign.queue`).
``heartbeat``
    Worker liveness mid-unit: ``unit``, ``index``, ``fence``, a
    per-lease ``seq`` number, the owning ``worker`` incarnation, the
    emitting ``pid``, and the wall-clock ``t``.
``extended``
    The supervisor extending a slow-but-heartbeating lease: ``unit``,
    ``fence``, the new ``expires``, and the ``extension`` ordinal.
``reclaimed``
    The supervisor fencing a lease: ``unit``, the revoked ``fence``,
    the ``reason``, and wall ``t``.  Reasons: ``stuck`` (heartbeat
    went stale) and ``expired`` (wall-clock timeout) count toward
    quarantine; ``unstarted`` (never heartbeated -- the worker slot,
    not the unit, is suspect), ``takeover`` (lease held by a dead
    incarnation at resume), and ``drain`` (operator SIGTERM) do not.
    Late ``done``/``failed`` records carrying a revoked fence are
    rejected deterministically on replay.
``done``
    Terminal: ``unit`` plus the full serialized
    :meth:`~repro.campaign.units.UnitResult.as_dict` payload, and the
    completing lease's ``fence``.
``failed``
    A retryable failure: ``unit``, the ``error`` text, the lease
    ``fence``, and its ``kind`` -- ``crash`` (an exception inside the
    worker, counted as ``attempt``) or ``died`` (the worker process was
    lost mid-unit, counted as ``death``).
``quarantined``
    Terminal: the unit was reclaimed or lost its worker too many times
    and is poisoned -- ``unit``, the ``reclaims``/``deaths`` counts at
    quarantine time, and the ``error`` text reported in its row.
``drained``
    A master stopped cleanly on SIGTERM: ``incarnation`` plus how many
    units were still ``outstanding``.  Resume needs no replay guesswork
    past this marker -- every in-flight lease was reclaimed first.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

#: Journal format tag written into (and checked against) the header.
JOURNAL_FORMAT = "repro.campaign/1"

#: Record payload: one JSON object per journal line.
JournalRecord = dict[str, object]

#: Canonical serialized prefix of heartbeat records (``sort_keys`` puts
#: ``event`` first), used to recognize torn mid-file heartbeat lines.
_HEARTBEAT_PREFIX = '{"event":"heartbeat"'

#: Record kinds that survive :func:`compact_journal` (terminal states
#: plus the retry accounting still needed to resume).
TERMINAL_EVENTS = ("done", "failed", "quarantined")

#: Optional hook run on the serialized line before it is written; chaos
#: injection uses it to tear an append mid-line (see
#: :mod:`repro.campaign.chaos`).  Returning ``None`` writes the line
#: unchanged; returning a string writes that instead.
AppendTamper = Callable[[JournalRecord, str], "str | None"]


class CampaignJournalError(ValueError):
    """Raised for journals that are corrupt beyond the torn-tail shape."""


@dataclass(frozen=True)
class JournalContents:
    """Everything :meth:`CampaignJournal.read` recovered from disk."""

    records: list[JournalRecord] = field(default_factory=list)
    torn_tail: bool = False
    warnings: tuple[str, ...] = ()

    @property
    def header(self) -> JournalRecord | None:
        """The campaign header record, if the journal has one."""
        if self.records and self.records[0].get("event") == "campaign":
            return self.records[0]
        return None


def salvage_torn_line(line: str) -> tuple[JournalRecord | None, str | None]:
    """Recover what a torn mid-file line allows: ``(record, warning)``.

    Only torn *heartbeat* lines are recoverable -- they are advisory and
    append-frequency hot, so losing one is harmless.  If a complete
    record was appended onto the torn heartbeat (the dying writer never
    reached its newline), the embedded record is salvaged; otherwise the
    line is skipped.  Lines that are not torn heartbeats return
    ``(None, None)``: the caller must treat them as corruption.
    """
    if not line.startswith(_HEARTBEAT_PREFIX):
        return None, None
    # A master append concatenated onto the torn heartbeat shows up as a
    # second record start mid-line; the *last* one is the newest append
    # and the only candidate for a complete record.
    start = line.rfind('{"event":', 1)
    if start > 0:
        try:
            payload = json.loads(line[start:])
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict):
            return payload, (
                "torn heartbeat line salvaged: recovered a complete "
                f"{payload.get('event')!r} record appended onto it"
            )
    return None, "torn heartbeat line skipped (advisory record, safe to drop)"


def _salvage_torn_master_line(
    line: str, later: list[JournalRecord | None]
) -> tuple[JournalRecord | None, str | None, bool]:
    """Judge a torn non-heartbeat mid-file line: ``(record, warning, crash)``.

    Only the master writes state transitions, so a torn master record
    can sit mid-file for exactly one reason: the master died mid-append
    and its orphaned pool workers kept heartbeating.  That is a crash
    signature iff everything between the tear and the next ``master``
    record (a new incarnation resuming -- always the first thing a
    resumed master appends) is worker output: a complete heartbeat
    concatenated onto the torn line (salvaged), and nothing but
    heartbeats on the following lines.  Anything else directly after the
    tear means the dead master somehow kept writing, which is not a
    crash shape: ``(None, None, False)`` and the caller must treat it as
    corruption.
    """
    if not line.startswith('{"event":'):
        return None, None, False
    embedded: JournalRecord | None = None
    start = line.rfind('{"event":', 1)
    if start > 0:
        try:
            payload = json.loads(line[start:])
        except json.JSONDecodeError:
            return None, None, False
        if not isinstance(payload, dict) or payload.get("event") != "heartbeat":
            return None, None, False
        embedded = payload
    for record in later:
        if record is None:
            continue  # a later torn line is judged on its own
        event = record.get("event")
        if event == "master":
            break  # a new incarnation took over; anything after is legal
        if event != "heartbeat":
            return None, None, False
    warning = (
        "torn master append dropped (master died mid-append; only worker "
        "heartbeats follow)"
    )
    if embedded is not None:
        warning += "; recovered the heartbeat appended onto it"
    return embedded, warning, True


class CampaignJournal:
    """One campaign's append-only JSONL transition log.

    The journal is opened, appended, flushed, fsynced, and closed per
    record: slower than a held handle, but every completed ``append``
    survives any subsequent crash, appends from different processes
    never contend over a shared file position, and each line lands with
    a single append-mode ``write`` so concurrent writers cannot
    interleave mid-line.
    """

    def __init__(self, path: str | Path, tamper: AppendTamper | None = None) -> None:
        self.path = Path(path)
        self.tamper = tamper

    @property
    def exists(self) -> bool:
        """Whether the journal already holds at least one byte."""
        try:
            return self.path.stat().st_size > 0
        except OSError:
            return False

    def append(self, record: JournalRecord) -> None:
        """Durably append one record (canonical JSON, own line)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        if self.tamper is not None:
            tampered = self.tamper(record, line)
            if tampered is not None:
                line = tampered
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def read(self) -> JournalContents:
        """Parse the journal, tolerating the legal torn-line shapes.

        Raises :class:`CampaignJournalError` if the file is missing, the
        first record is not a :data:`JOURNAL_FORMAT` header, or any line
        fails to parse without matching one of the crash signatures
        documented in the module docstring (mid-file corruption of state
        transitions must not be silently dropped).
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CampaignJournalError(f"cannot read journal {self.path}: {exc}") from exc
        warnings: list[str] = []
        torn_tail = False
        lines = text.split("\n")
        # A well-formed journal ends with "\n", so split() yields a final
        # empty string; anything else after the last newline is a torn tail
        # unless it happens to parse as a complete record (flushed but
        # killed between write and the trailing-newline -- impossible with
        # our single-write append, so a bare valid JSON tail still counts).
        parsed: list[tuple[int, str, JournalRecord | None]] = []
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            payload: JournalRecord | None
            try:
                loaded = json.loads(line)
            except json.JSONDecodeError:
                payload = None
            else:
                if not isinstance(loaded, dict):
                    raise CampaignJournalError(
                        f"journal {self.path} line {lineno + 1} is not an object"
                    )
                payload = loaded
            parsed.append((lineno, line, payload))
        records: list[JournalRecord] = []
        for pos, (lineno, line, payload) in enumerate(parsed):
            if payload is not None:
                records.append(payload)
                continue
            if lineno == len(lines) - 1:
                torn_tail = True
                continue
            salvaged, warning = salvage_torn_line(line)
            if warning is None:
                salvaged, warning, crash = _salvage_torn_master_line(
                    line, [p for _, _, p in parsed[pos + 1 :]]
                )
                if crash:
                    torn_tail = True
            if warning is None:
                raise CampaignJournalError(
                    f"journal {self.path} is corrupt at line {lineno + 1}: "
                    "not valid JSON and not a recognized crash signature"
                )
            warnings.append(f"line {lineno + 1}: {warning}")
            if salvaged is not None:
                records.append(salvaged)
        if not records:
            raise CampaignJournalError(f"journal {self.path} is empty")
        header = records[0]
        if header.get("event") != "campaign":
            raise CampaignJournalError(
                f"journal {self.path} does not start with a campaign header"
            )
        if header.get("format") != JOURNAL_FORMAT:
            raise CampaignJournalError(
                f"journal {self.path} has unsupported format "
                f"{header.get('format')!r} (expected {JOURNAL_FORMAT!r})"
            )
        return JournalContents(
            records=records, torn_tail=torn_tail, warnings=tuple(warnings)
        )


def compact_journal(
    journal: CampaignJournal, out: str | Path | None = None
) -> tuple[int, int]:
    """Rewrite a long journal to header + terminal records.

    Heartbeats, leases, extensions, reclamations and master markers are
    replay noise once their unit has reached a terminal state (or been
    released back to QUEUED); what resume actually needs is the header
    (with its expansion fingerprint intact) plus, per unit, the standing
    ``done`` record, the retry accounting of still-``failed`` units, and
    ``quarantined`` markers.  Fence bookkeeping collapses with the
    history: the surviving records are exactly the fence-valid ones, so
    they replay identically without their revoked competitors.

    Writes atomically (temp file + rename) over the journal itself, or
    to *out* when given, and returns ``(records_before, records_after)``.
    """
    # Imported here, not at module top: queue imports journal.
    from repro.campaign.queue import QueueState, UnitStatus

    contents = journal.read()
    header = contents.header
    if header is None:
        raise CampaignJournalError(f"journal {journal.path} has no header")
    state = QueueState.from_journal(contents.records)
    kept: list[JournalRecord] = [header]
    ordered = sorted(state.units, key=lambda k: state.units[k].index)
    for key in ordered:
        kept.append({"event": "queued", "unit": key, "index": state.units[key].index})
    for key in ordered:
        entry = state.units[key]
        if entry.status is UnitStatus.DONE and entry.result is not None:
            kept.append(
                {"event": "done", "unit": key, "result": entry.result.as_dict()}
            )
        elif entry.status is UnitStatus.QUARANTINED:
            kept.append(
                {
                    "event": "quarantined",
                    "unit": key,
                    "reclaims": entry.reclaims,
                    "deaths": entry.deaths,
                    "error": entry.quarantine_error,
                }
            )
        elif entry.status is UnitStatus.FAILED:
            # One record per exhausted budget kind: replay rebuilds both
            # the crash-attempt and worker-death counters.
            if entry.attempts:
                kept.append(
                    {
                        "event": "failed",
                        "unit": key,
                        "error": entry.last_error,
                        "kind": "crash",
                        "attempt": entry.attempts,
                    }
                )
            if entry.deaths:
                kept.append(
                    {
                        "event": "failed",
                        "unit": key,
                        "error": entry.last_error,
                        "kind": "died",
                        "death": entry.deaths,
                    }
                )
    target = journal.path if out is None else Path(out)
    tmp = target.with_suffix(target.suffix + ".compact")
    compacted = CampaignJournal(tmp)
    try:
        tmp.unlink()
    except OSError:
        pass
    for record in kept:
        compacted.append(record)
    os.replace(tmp, target)
    return len(contents.records), len(kept)
