"""Orchestration chaos: seeded fault schedules for the campaign layer.

:mod:`repro.faults` injects faults into the *channel*; this module
points the same discipline at the *orchestration* layer -- the master,
its worker pool, the journal appends -- and asserts the recovery story
the journal promises: the final :meth:`~repro.campaign.report.
CampaignReport.report_json` must be byte-identical to a chaos-free run
no matter which workers were killed, stalled, or torn mid-append.

Faults come from a deterministic **schedule grammar**::

    kill:unit=3;stall:unit=5,dur=2.0;tear:record=done

one ``kind[:key=value[,key=value...]]`` event per ``;``-separated slot:

``kill:unit=N``
    SIGKILL the pool worker executing unit index *N* (its pid is learned
    from the unit's ``heartbeat`` records).  Exercises the
    ``failed kind="died"`` path and BrokenProcessPool recovery.
``stall:unit=N[,dur=S]``
    SIGSTOP that worker for *S* seconds (default 2.0), then SIGCONT.
    Manufactures a genuinely stuck-not-dead worker: heartbeats stop
    while the lease's wall clock keeps running, so supervision must
    reclaim via staleness strictly before the lease timeout.
``drop_hb:unit=N[,from=F][,count=C]``
    Silently drop the unit's heartbeats with ``seq >= F`` (default 0),
    at most *C* of them (default: all).  The worker stays healthy but
    looks stuck -- its late completion must be fenced off.
``delay_hb:unit=N,dur=S[,from=F][,count=C]``
    Delay matching heartbeats by *S* seconds before emitting.
``tear:record=E[,unit=N][,at=K]``
    Tear the *K*-th (default first) journal append of an ``E`` record
    (optionally only for unit index *N*) mid-line and kill the writing
    process -- the crash signature around journal appends.  Torn
    ``heartbeat`` appends happen in the worker; any other record tears
    in the master.

``kill`` and ``stall`` are injected *from outside* by the harness
(:func:`run_chaos_campaign`), which tails the journal for heartbeat
pids.  ``drop_hb``/``delay_hb``/``tear`` act *inside* the campaign
processes, carried by the :data:`CHAOS_ENV` environment variable and
consulted by :func:`heartbeat_filter_from_env` (in the worker's
:class:`~repro.campaign.supervise.HeartbeatEmitter`) and
:func:`tamper_from_env` (the journal's append hook).  Resumed runs are
launched without the variable, so a consumed tear is not re-torn.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import cast

from repro.campaign.journal import AppendTamper, CampaignJournal, JournalRecord
from repro.campaign.supervise import HeartbeatFilter, JournalTail

#: Environment variable carrying the in-process chaos schedule.
CHAOS_ENV = "REPRO_CAMPAIGN_CHAOS"

#: Exit code of a process that died at an injected tear point.
TEAR_EXIT_CODE = 42

#: Recognized event kinds, split by where they act.
EXTERNAL_KINDS = ("kill", "stall")
INTERNAL_KINDS = ("drop_hb", "delay_hb", "tear")


class ChaosScheduleError(ValueError):
    """Raised for schedules that do not fit the grammar."""


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: a kind plus its ``key=value`` parameters."""

    kind: str
    params: dict[str, str] = field(default_factory=dict)

    def spec(self) -> str:
        """The event re-serialized in canonical grammar form."""
        if not self.params:
            return self.kind
        body = ",".join(f"{key}={self.params[key]}" for key in self.params)
        return f"{self.kind}:{body}"

    def int_param(self, name: str, default: int | None = None) -> int | None:
        raw = self.params.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ChaosScheduleError(
                f"chaos event {self.spec()!r}: {name} must be an integer"
            ) from exc

    def float_param(self, name: str, default: float) -> float:
        raw = self.params.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ChaosScheduleError(
                f"chaos event {self.spec()!r}: {name} must be a number"
            ) from exc

    @property
    def unit(self) -> int | None:
        return self.int_param("unit")


@dataclass(frozen=True)
class ChaosSchedule:
    """A parsed fault schedule (see the module docstring for grammar)."""

    events: tuple[ChaosEvent, ...] = ()

    def spec(self) -> str:
        """The whole schedule in canonical grammar form."""
        return ";".join(event.spec() for event in self.events)

    def external(self) -> tuple[ChaosEvent, ...]:
        """Signal-injection events the harness performs from outside."""
        return tuple(e for e in self.events if e.kind in EXTERNAL_KINDS)

    def internal(self) -> tuple[ChaosEvent, ...]:
        """Events the campaign processes perform on themselves."""
        return tuple(e for e in self.events if e.kind in INTERNAL_KINDS)

    def env(self) -> dict[str, str]:
        """Environment overlay carrying the internal events (may be empty)."""
        internal = self.internal()
        if not internal:
            return {}
        return {CHAOS_ENV: ";".join(event.spec() for event in internal)}


def parse_chaos(text: str) -> ChaosSchedule:
    """Parse the schedule grammar; raises :class:`ChaosScheduleError`."""
    events: list[ChaosEvent] = []
    for slot in text.split(";"):
        slot = slot.strip()
        if not slot:
            continue
        kind, _, body = slot.partition(":")
        kind = kind.strip()
        if kind not in EXTERNAL_KINDS + INTERNAL_KINDS:
            raise ChaosScheduleError(
                f"unknown chaos event kind {kind!r} in {slot!r} "
                f"(expected one of {', '.join(EXTERNAL_KINDS + INTERNAL_KINDS)})"
            )
        params: dict[str, str] = {}
        if body:
            for pair in body.split(","):
                key, eq, value = pair.partition("=")
                if not eq or not key.strip() or not value.strip():
                    raise ChaosScheduleError(
                        f"malformed parameter {pair!r} in chaos event {slot!r} "
                        "(expected key=value)"
                    )
                params[key.strip()] = value.strip()
        event = ChaosEvent(kind=kind, params=params)
        if kind in ("kill", "stall", "drop_hb", "delay_hb") and event.unit is None:
            raise ChaosScheduleError(f"chaos event {slot!r} requires unit=N")
        if kind == "delay_hb" and "dur" not in params:
            raise ChaosScheduleError(f"chaos event {slot!r} requires dur=S")
        if kind == "tear":
            record = params.get("record")
            if not record:
                raise ChaosScheduleError(f"chaos event {slot!r} requires record=EVENT")
        events.append(event)
    return ChaosSchedule(events=tuple(events))


def _schedule_from_env(environ: dict[str, str] | None = None) -> ChaosSchedule | None:
    env = os.environ if environ is None else environ
    raw = env.get(CHAOS_ENV, "").strip()
    if not raw:
        return None
    return parse_chaos(raw)


# ----------------------------------------------------------------------
# In-process injectors (driven by CHAOS_ENV)
# ----------------------------------------------------------------------
def heartbeat_filter_from_env(
    environ: dict[str, str] | None = None,
) -> HeartbeatFilter | None:
    """A drop/delay filter for the worker's heartbeat emitter, or None.

    Consulted once per beat as ``(unit_index, seq) -> (emit, delay_s)``.
    Each worker process parses the schedule independently; events are
    keyed by unit index, so which worker executes the unit is irrelevant.
    """
    schedule = _schedule_from_env(environ)
    if schedule is None:
        return None
    events = [e for e in schedule.internal() if e.kind in ("drop_hb", "delay_hb")]
    if not events:
        return None
    remaining = {
        id(event): cast(int, event.int_param("count", -1)) for event in events
    }

    def chaos(unit_index: int, seq: int) -> tuple[bool, float]:
        emit, delay_s = True, 0.0
        for event in events:
            if event.unit != unit_index or seq < cast(int, event.int_param("from", 0)):
                continue
            left = remaining[id(event)]
            if left == 0:
                continue  # count budget consumed
            if left > 0:
                remaining[id(event)] = left - 1
            if event.kind == "drop_hb":
                emit = False
            else:
                delay_s += event.float_param("dur", 0.0)
        return emit, delay_s

    return chaos


def _record_unit_index(record: JournalRecord) -> int | None:
    """Best-effort unit index of a journal record (for tear matching)."""
    index = record.get("index")
    if isinstance(index, int):
        return index
    result = record.get("result")
    if isinstance(result, dict) and isinstance(result.get("index"), int):
        return int(result["index"])
    return None


def tamper_from_env(
    path: str | Path,
    role: str,
    environ: dict[str, str] | None = None,
) -> AppendTamper | None:
    """A tear-injecting journal append hook for *role*, or None.

    *role* is ``"worker"`` (handles ``tear:record=heartbeat``) or
    ``"master"`` (handles every other record kind) -- tears fire in the
    process that actually writes the record.  On the scheduled append
    the hook writes the first half of the serialized line **without its
    newline** straight to the journal and kills the process with
    ``os._exit(``:data:`TEAR_EXIT_CODE```)``: exactly the torn-line
    crash signature the journal reader must tolerate.
    """
    schedule = _schedule_from_env(environ)
    if schedule is None:
        return None
    tears = []
    for event in schedule.internal():
        if event.kind != "tear":
            continue
        record = event.params["record"]
        if (record == "heartbeat") == (role == "worker"):
            tears.append(event)
    if not tears:
        return None
    journal_path = Path(path)
    countdown = {id(event): event.int_param("at", 1) or 1 for event in tears}

    def tamper(record: JournalRecord, line: str) -> str | None:
        for event in tears:
            if record.get("event") != event.params["record"]:
                continue
            unit = event.unit
            if unit is not None and _record_unit_index(record) != unit:
                continue
            countdown[id(event)] = cast(int, countdown[id(event)]) - 1
            if countdown[id(event)] > 0:
                continue
            torn = line[: max(1, (len(line) - 1) // 2)]
            with open(journal_path, "a", encoding="utf-8") as handle:
                handle.write(torn)
                handle.flush()
                os.fsync(handle.fileno())
            os._exit(TEAR_EXIT_CODE)
        return None

    return tamper


# ----------------------------------------------------------------------
# The harness: a real campaign subprocess under external injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StuckReclaim:
    """One supervision reclaim, with the wall-clock margin it won by."""

    unit: str
    fence: int
    reclaimed_at: float
    lease_expires_at: float

    @property
    def beat_wall_clock(self) -> bool:
        """Whether staleness detection fired before the lease timeout."""
        return self.reclaimed_at < self.lease_expires_at


@dataclass(frozen=True)
class ChaosRunResult:
    """Everything :func:`run_chaos_campaign` measured."""

    identical: bool
    report_json: str
    clean_report_json: str
    injected: tuple[str, ...]
    resumes: int
    exit_codes: tuple[int, ...]
    stuck_reclaims: tuple[StuckReclaim, ...]
    deaths: int
    quarantined: int

    def summary(self) -> str:
        lines = [
            f"chaos: injected={len(self.injected)} resumes={self.resumes} "
            f"deaths={self.deaths} quarantined={self.quarantined}",
            f"  report byte-identical to clean run: {self.identical}",
        ]
        for item in self.injected:
            lines.append(f"  injected {item}")
        for reclaim in self.stuck_reclaims:
            margin = reclaim.lease_expires_at - reclaim.reclaimed_at
            lines.append(
                f"  reclaimed {reclaim.unit} (fence {reclaim.fence}) "
                f"{margin:.1f}s before its lease timeout"
            )
        return "\n".join(lines)


def _campaign_command(
    python: str,
    spec: str,
    journal: Path,
    *,
    resume: bool,
    scale: str,
    seed: int,
    workers: int,
    lease_timeout_s: float,
    heartbeat_s: float,
    stuck_after_s: float,
    quarantine_after: int,
) -> list[str]:
    cmd = [python, "-m", "repro.tools.campaign"]
    if resume:
        cmd += ["resume"]
    else:
        cmd += ["run", "--spec", spec, "--scale", scale, "--seed", str(seed)]
    cmd += [
        "--journal", str(journal),
        "--workers", str(workers),
        "--heartbeat-s", str(heartbeat_s),
        "--stuck-after", str(stuck_after_s),
        "--quarantine-after", str(quarantine_after),
    ]
    if not resume:
        cmd += ["--lease-timeout", str(lease_timeout_s)]
    return cmd


class _SignalInjector:
    """Performs the schedule's kill/stall events against live workers.

    Worker pids are learned from ``heartbeat`` records (each carries the
    emitting ``pid`` and unit ``index``) tailed out of the journal while
    the campaign runs.  Every event fires at most once, on the first
    heartbeat of its target unit.
    """

    def __init__(self, schedule: ChaosSchedule, journal: Path) -> None:
        self.pending = list(schedule.external())
        self.tail = JournalTail(journal)
        self.injected: list[str] = []
        self._conts: list[tuple[float, int]] = []  # (due time, pid)

    @property
    def done(self) -> bool:
        return not self.pending and not self._conts

    def poll(self) -> None:
        """Inject every due event; call regularly while the master runs."""
        for record in self.tail.poll():
            if record.get("event") != "heartbeat":
                continue
            index = record.get("index")
            pid = record.get("pid")
            if not isinstance(index, int) or not isinstance(pid, int):
                continue
            for event in list(self.pending):
                if event.unit != index:
                    continue
                self.pending.remove(event)
                try:
                    if event.kind == "kill":
                        os.kill(pid, signal.SIGKILL)
                        self.injected.append(f"kill unit={index} pid={pid}")
                    else:  # stall
                        duration = event.float_param("dur", 2.0)
                        os.kill(pid, signal.SIGSTOP)
                        self._conts.append((time.monotonic() + duration, pid))
                        self.injected.append(
                            f"stall unit={index} pid={pid} dur={duration}"
                        )
                except OSError:
                    self.injected.append(f"{event.kind} unit={index} pid={pid} (gone)")
        now = time.monotonic()
        for due, pid in list(self._conts):
            if now >= due:
                self._conts.remove((due, pid))
                try:
                    os.kill(pid, signal.SIGCONT)
                except OSError:
                    pass

    def release_all(self) -> None:
        """SIGCONT anything still stopped (cleanup; never leave zombies)."""
        for _, pid in self._conts:
            try:
                os.kill(pid, signal.SIGCONT)
            except OSError:
                pass
        self._conts.clear()


def _stuck_reclaims(records: list[JournalRecord]) -> tuple[StuckReclaim, ...]:
    """Pair each ``stuck`` reclaim with the lease grant it revoked."""
    expires: dict[tuple[str, int], float] = {}
    found: list[StuckReclaim] = []
    for record in records:
        event = record.get("event")
        unit = str(record.get("unit"))
        fence = record.get("fence")
        if event == "leased" and isinstance(fence, int):
            expires[(unit, fence)] = float(cast(float, record.get("expires", 0.0)))
        elif event == "extended" and isinstance(fence, int):
            expires[(unit, fence)] = float(cast(float, record.get("expires", 0.0)))
        elif event == "reclaimed" and record.get("reason") == "stuck":
            if isinstance(fence, int) and (unit, fence) in expires:
                found.append(
                    StuckReclaim(
                        unit=unit,
                        fence=fence,
                        reclaimed_at=float(cast(float, record.get("t", 0.0))),
                        lease_expires_at=expires[(unit, fence)],
                    )
                )
    return tuple(found)


def run_chaos_campaign(
    spec: str,
    schedule: ChaosSchedule | str,
    workdir: str | Path,
    *,
    scale: str = "quick",
    seed: int = 1,
    workers: int = 2,
    heartbeat_s: float = 0.1,
    stuck_after_s: float = 0.5,
    lease_timeout_s: float = 120.0,
    quarantine_after: int = 5,
    max_resumes: int = 6,
    timeout_s: float = 180.0,
    python: str = sys.executable,
) -> ChaosRunResult:
    """Run one campaign clean and once under *schedule*; compare reports.

    The chaos run is a real ``repro.tools.campaign`` subprocess (so its
    pool workers are real processes signals can hit); the clean run is
    executed in-process first to produce the reference bytes.  If the
    chaos master dies (tear points exit with :data:`TEAR_EXIT_CODE`,
    kills may take the master down), it is resumed -- without the chaos
    environment -- until the campaign completes or *max_resumes* is hit.
    """
    from repro.campaign.master import CampaignMaster, report_from_journal

    if isinstance(schedule, str):
        schedule = parse_chaos(schedule)
    workdir = Path(workdir).resolve()
    workdir.mkdir(parents=True, exist_ok=True)

    clean_journal = CampaignJournal(workdir / "clean.jsonl")
    clean = CampaignMaster(
        spec,
        journal=clean_journal,
        scale=scale,
        seed=seed,
        workers=workers,
        lease_timeout_s=lease_timeout_s,
    ).run()
    clean_json = clean.report.report_json()

    journal = workdir / "chaos.jsonl"
    env = dict(os.environ)
    env.update(schedule.env())
    src = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH", "")) if p
    )
    injector = _SignalInjector(schedule, journal)
    exit_codes: list[int] = []
    deadline = time.monotonic() + timeout_s

    def drive(cmd: list[str], run_env: dict[str, str]) -> int:
        proc = subprocess.Popen(
            cmd, env=run_env, cwd=workdir,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            while proc.poll() is None:
                injector.poll()
                if time.monotonic() > deadline:
                    proc.kill()
                    proc.wait()
                    raise TimeoutError(
                        f"chaos campaign exceeded {timeout_s}s (schedule "
                        f"{schedule.spec()!r})"
                    )
                time.sleep(0.02)
        finally:
            injector.release_all()
        return int(proc.returncode or 0)

    common = dict(
        scale=scale, seed=seed, workers=workers, lease_timeout_s=lease_timeout_s,
        heartbeat_s=heartbeat_s, stuck_after_s=stuck_after_s,
        quarantine_after=quarantine_after,
    )
    code = drive(
        _campaign_command(python, spec, journal, resume=False, **common), env
    )
    exit_codes.append(code)
    resumes = 0
    resume_env = {k: v for k, v in env.items() if k != CHAOS_ENV}
    while code != 0 and resumes < max_resumes:
        resumes += 1
        code = drive(
            _campaign_command(python, spec, journal, resume=True, **common),
            resume_env,
        )
        exit_codes.append(code)

    contents = CampaignJournal(journal).read()
    report = report_from_journal(CampaignJournal(journal))
    deaths = sum(
        1
        for r in contents.records
        if r.get("event") == "failed" and r.get("kind") == "died"
    )
    quarantined = sum(
        1 for r in contents.records if r.get("event") == "quarantined"
    )
    report_json = report.report_json()
    return ChaosRunResult(
        identical=report_json == clean_json,
        report_json=report_json,
        clean_report_json=clean_json,
        injected=tuple(injector.injected),
        resumes=resumes,
        exit_codes=tuple(exit_codes),
        stuck_reclaims=_stuck_reclaims(contents.records),
        deaths=deaths,
        quarantined=quarantined,
    )
