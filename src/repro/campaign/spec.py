"""Campaign specs: the whole scenario matrix in one grammar string.

A campaign describes a dense condition matrix -- the way Revelio and
DeepLight report results (PAPERS.md) -- as the cross product of a few
**axes**, in the same compact spec style as ``--faults``
(:mod:`repro.faults.plan`) and ``--cohorts`` (:mod:`repro.serve.cohort`)::

    SPEC := axis ("|" axis)*
    axis := name "=" value ("," value)*

for example::

    parameter=tau:8,12,16|faults=none,drop:p=0.1,flip:at=0.2|heal=on,off

Axes (all optional; a missing axis contributes its single default):

=========== ==========================================================
axis        values
=========== ==========================================================
workload    which entry point executes the unit: ``link``
            (:func:`repro.core.pipeline.run_link`), ``transport`` or
            ``transport:mode=<plain|fountain|arq|carousel>+rounds=<n>``
            (:func:`~repro.core.pipeline.run_transport_link`), and
            ``fleet`` or ``fleet:n=<receivers>+distance=<d>+dwell=<s>``
            (:func:`repro.serve.run_fleet`).  Default ``link``.
parameter   one swept config field: ``parameter=tau:8,12,16``.  The
            axis may repeat with different fields; every field must be
            in :data:`SWEEPABLE`.  ``seeds`` is the replicate count --
            a unit with ``seeds=4`` runs four spawn-keyed replicates
            and reports their pooled statistics.
video       display content: ``gray``, ``dark-gray``, ``video``.
faults      ``none`` or an embedded :mod:`repro.faults` spec with
            ``/`` standing in for ``;`` and ``+`` for ``,`` (the outer
            grammar owns those), e.g. ``drop:p=0.1+burst=3/flip:at=0.5``.
heal        ``on`` / ``off`` / ``auto`` (heal exactly when faulted).
=========== ==========================================================

Determinism contract
--------------------
Expansion is a plain cross product in canonical axis order (workload,
video, parameters in spec order, faults, heal), so the same spec always
yields the same ordered tuple of :class:`~repro.campaign.units.WorkUnit`
payloads.  Each unit's seed is :func:`~repro._util.stable_seed` of the
campaign seed and the unit's canonical key -- its own spawn key into the
run's ``SeedSequence`` streams -- so a unit's result depends only on its
key, never on scheduling, worker count, retries, or which other units
exist.  ``fingerprint`` digests the whole expansion; resuming a journal
recorded under a different expansion is refused rather than silently
re-keyed.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro._util import stable_seed
from repro.campaign.units import TRANSPORT_MODES, WORKLOADS, WorkUnit
from repro.faults.plan import FaultPlan, FaultSpecError

#: Config/camera fields a campaign (or ``repro.tools.sweep``) may sweep,
#: with the scalar type their values must coerce to.  ``tau``,
#: ``amplitude``, ``pixels_per_block`` and ``decision_margin`` are
#: :class:`~repro.core.config.InFrameConfig` fields; ``exposure_s`` and
#: ``distance`` reshape the capture camera; ``seeds`` is the number of
#: spawn-keyed replicates pooled into one unit.
SWEEPABLE: dict[str, type] = {
    "tau": int,
    "amplitude": float,
    "pixels_per_block": int,
    "decision_margin": float,
    "exposure_s": float,
    "distance": float,
    "seeds": int,
}

#: Sweepable keys that are ``InFrameConfig.with_updates`` fields.
CONFIG_KEYS = ("tau", "amplitude", "pixels_per_block", "decision_margin")
#: Sweepable keys that reshape the camera model instead.
CAMERA_KEYS = ("exposure_s", "distance")

_AXIS_NAMES = ("workload", "video", "parameter", "faults", "heal")
_VIDEOS = ("gray", "dark-gray", "video")
_HEALS = ("on", "off", "auto")

#: Workload parameter tables: name -> (allowed key -> caster).
_WORKLOAD_PARAMS: dict[str, dict[str, type]] = {
    "link": {},
    "transport": {"rounds": int},
    "fleet": {"n": int, "distance": float, "dwell": float},
}


class CampaignSpecError(ValueError):
    """Raised when a campaign spec string cannot be parsed."""


def coerce_sweep_values(
    parameter: str, values: Sequence[object]
) -> tuple[float | int, ...]:
    """Validate and coerce one sweepable parameter's values.

    Raises :class:`CampaignSpecError` naming every sweepable key when
    the parameter is unknown, the values do not coerce to the field's
    scalar type, or a value is out of its legal range -- the parse-time
    validation both the campaign grammar and ``repro.tools.sweep`` use.
    """
    if parameter not in SWEEPABLE:
        raise CampaignSpecError(
            f"unknown sweepable parameter {parameter!r} "
            f"(sweepable: {', '.join(sorted(SWEEPABLE))})"
        )
    caster = SWEEPABLE[parameter]
    coerced: list[float | int] = []
    for value in values:
        try:
            coerced.append(caster(value))
        except (TypeError, ValueError):
            raise CampaignSpecError(
                f"values for {parameter!r} must be {caster.__name__}s, "
                f"got {value!r} (sweepable: {', '.join(sorted(SWEEPABLE))})"
            ) from None
    if not coerced:
        raise CampaignSpecError(f"parameter {parameter!r} needs at least one value")
    if parameter == "seeds" and any(v < 1 for v in coerced):
        raise CampaignSpecError("seeds (replicate count) must be >= 1")
    if parameter in ("distance", "exposure_s") and any(v <= 0 for v in coerced):
        raise CampaignSpecError(f"{parameter} values must be > 0")
    return tuple(coerced)


@dataclass(frozen=True)
class Axis:
    """One campaign axis: a label and its ordered canonical value labels.

    ``name`` is ``workload`` / ``video`` / ``faults`` / ``heal`` or
    ``parameter:<field>``; ``key_label`` is what unit keys use for the
    assignment (the bare field name for parameter axes).
    """

    name: str
    values: tuple[str, ...]

    @property
    def key_label(self) -> str:
        """The assignment label used inside unit keys."""
        if self.name.startswith("parameter:"):
            return self.name.partition(":")[2]
        return self.name

    def spec(self) -> str:
        """The round-trippable axis text."""
        if self.name.startswith("parameter:"):
            field = self.name.partition(":")[2]
            return f"parameter={field}:{','.join(self.values)}"
        return f"{self.name}={','.join(self.values)}"


def _canonical_number(value: float | int) -> str:
    """A value label that round-trips through the grammar (``8``, ``0.5``)."""
    if isinstance(value, int):
        return str(value)
    return f"{value:g}"


def _parse_workload_value(text: str) -> str:
    """Validate one workload value; returns its canonical label."""
    base, _, body = text.partition(":")
    base = base.strip()
    if base not in WORKLOADS:
        raise CampaignSpecError(
            f"unknown workload {base!r} (known: {', '.join(WORKLOADS)})"
        )
    if not body.strip():
        return base
    allowed = _WORKLOAD_PARAMS[base]
    parts: list[str] = []
    seen: set[str] = set()
    for pair in body.split("+"):
        key, eq, value = pair.partition("=")
        key = key.strip()
        if not eq:
            raise CampaignSpecError(
                f"malformed workload parameter {pair!r} (expected key=value)"
            )
        if base == "transport" and key == "mode":
            mode = value.strip()
            if mode not in TRANSPORT_MODES:
                raise CampaignSpecError(
                    f"unknown transport mode {mode!r} "
                    f"(known: {', '.join(TRANSPORT_MODES)})"
                )
            parts.append(f"mode={mode}")
        elif key in allowed:
            try:
                number = allowed[key](value)
            except (TypeError, ValueError):
                raise CampaignSpecError(
                    f"non-numeric value {value!r} for workload {base}.{key}"
                ) from None
            parts.append(f"{key}={_canonical_number(number)}")
        else:
            known = sorted([*allowed, "mode"] if base == "transport" else allowed)
            raise CampaignSpecError(
                f"workload {base!r} has no parameter {key!r} "
                f"(known: {', '.join(known)})"
            )
        if key in seen:
            raise CampaignSpecError(f"workload {base!r} repeats parameter {key!r}")
        seen.add(key)
    return f"{base}:{'+'.join(parts)}"


def decode_faults_value(label: str) -> str | None:
    """An embedded faults value back in the native ``;``/``,`` grammar."""
    if label == "none":
        return None
    return label.replace("/", ";").replace("+", ",")


def encode_faults_value(native: str) -> str:
    """A native faults spec in the embedded (``/``/``+``) grammar."""
    return native.replace(";", "/").replace(",", "+")


def _parse_faults_value(text: str) -> str:
    """Validate one faults value; returns its canonical embedded label."""
    if text == "none":
        return text
    try:
        plan = FaultPlan.parse(text.replace("/", ";").replace("+", ","))
    except FaultSpecError as exc:
        raise CampaignSpecError(f"faults value {text!r}: {exc}") from exc
    return encode_faults_value(plan.spec())


def _parse_axis(part: str) -> Axis:
    """One ``name=value,value`` axis clause."""
    name, eq, body = part.partition("=")
    name = name.strip()
    if not eq or not name:
        raise CampaignSpecError(
            f"malformed axis {part!r} (expected name=value[,value...]; "
            f"axes: {', '.join(_AXIS_NAMES)})"
        )
    if name not in _AXIS_NAMES:
        raise CampaignSpecError(
            f"unknown axis {name!r} (axes: {', '.join(_AXIS_NAMES)})"
        )
    if name == "parameter":
        field, colon, csv = body.partition(":")
        field = field.strip()
        if not colon:
            raise CampaignSpecError(
                f"parameter axis needs 'field:v1,v2,...', got {body!r}"
            )
        values = coerce_sweep_values(field, [v.strip() for v in csv.split(",")])
        return Axis(
            name=f"parameter:{field}",
            values=tuple(_canonical_number(v) for v in values),
        )
    raw = [v.strip() for v in body.split(",") if v.strip()]
    if not raw:
        raise CampaignSpecError(f"axis {name!r} has no values")
    if name == "workload":
        labels = tuple(_parse_workload_value(v) for v in raw)
    elif name == "video":
        for v in raw:
            if v not in _VIDEOS:
                raise CampaignSpecError(
                    f"unknown video {v!r} (known: {', '.join(_VIDEOS)})"
                )
        labels = tuple(raw)
    elif name == "faults":
        labels = tuple(_parse_faults_value(v) for v in raw)
    else:  # heal
        for v in raw:
            if v not in _HEALS:
                raise CampaignSpecError(
                    f"heal value must be one of {', '.join(_HEALS)}, got {v!r}"
                )
        labels = tuple(raw)
    if len(set(labels)) != len(labels):
        raise CampaignSpecError(f"axis {name!r} repeats a value")
    return Axis(name=name, values=labels)


_DEFAULTS = {"workload": "link", "video": "gray", "faults": "none", "heal": "auto"}


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed campaign: axes in canonical order, defaults filled in."""

    axes: tuple[Axis, ...]

    @staticmethod
    def parse(text: str) -> "CampaignSpec":
        """Parse the axis grammar; raises :class:`CampaignSpecError`."""
        parts = [part.strip() for part in text.split("|") if part.strip()]
        if not parts:
            raise CampaignSpecError("campaign spec is empty")
        parsed = [_parse_axis(part) for part in parts]
        seen: set[str] = set()
        for axis in parsed:
            if axis.name in seen:
                raise CampaignSpecError(f"duplicate axis {axis.name!r}")
            seen.add(axis.name)
        # Canonical order: workload, video, parameters (spec order), faults, heal.
        by_name = {axis.name: axis for axis in parsed}
        axes: list[Axis] = []
        for name in ("workload", "video"):
            axes.append(by_name.get(name, Axis(name, (_DEFAULTS[name],))))
        axes.extend(a for a in parsed if a.name.startswith("parameter:"))
        for name in ("faults", "heal"):
            axes.append(by_name.get(name, Axis(name, (_DEFAULTS[name],))))
        return CampaignSpec(axes=tuple(axes))

    def spec(self) -> str:
        """The canonical round-trippable spec string."""
        return "|".join(axis.spec() for axis in self.axes)

    @property
    def n_units(self) -> int:
        """How many work units the cross product expands to."""
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def expand(
        self,
        *,
        scale: str = "benchmark",
        seed: int = 1,
        payload_bytes: int = 64,
        fault_seed: int | None = None,
    ) -> tuple[WorkUnit, ...]:
        """The full, ordered work-unit expansion of this campaign.

        Every randomized aspect of a unit derives from
        ``stable_seed(seed, key)`` -- the unit's own spawn key -- so the
        expansion is a pure function of ``(spec, scale, seed,
        payload_bytes, fault_seed)`` and each unit's result is
        independent of scheduling, worker count, and retries.
        """
        units: list[WorkUnit] = []
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            assignment = dict(zip((a.key_label for a in self.axes), combo))
            key = "|".join(
                f"{axis.key_label}={label}"
                for axis, label in zip(self.axes, combo)
            )
            unit_seed = stable_seed(seed, key)
            units.append(
                _build_unit(
                    index=index,
                    key=key,
                    assignment=assignment,
                    scale=scale,
                    seed=unit_seed,
                    fault_seed=(
                        unit_seed
                        if fault_seed is None
                        else stable_seed(fault_seed, key)
                    ),
                    payload_bytes=payload_bytes,
                )
            )
        return tuple(units)

    def fingerprint(
        self,
        *,
        scale: str = "benchmark",
        seed: int = 1,
        payload_bytes: int = 64,
        fault_seed: int | None = None,
    ) -> int:
        """A stable digest of the full expansion (the resume guard)."""
        return stable_seed(
            "campaign", self.spec(), scale, seed, payload_bytes, fault_seed
        )


def _build_unit(
    *,
    index: int,
    key: str,
    assignment: dict[str, str],
    scale: str,
    seed: int,
    fault_seed: int,
    payload_bytes: int,
) -> WorkUnit:
    """One axis assignment decoded into an executable work unit."""
    workload_label = assignment["workload"]
    base, _, body = workload_label.partition(":")
    transport_mode = "fountain"
    workload_params: list[tuple[str, float]] = []
    if body:
        for pair in body.split("+"):
            wkey, _, value = pair.partition("=")
            if base == "transport" and wkey == "mode":
                transport_mode = value
            else:
                workload_params.append((wkey, float(value)))
    config_overrides: list[tuple[str, float]] = []
    camera_overrides: list[tuple[str, float]] = []
    replicates = 1
    for field, label in assignment.items():
        if field not in SWEEPABLE:
            continue
        value = float(SWEEPABLE[field](label))
        if field == "seeds":
            replicates = int(value)
        elif field in CAMERA_KEYS:
            camera_overrides.append((field, value))
        else:
            config_overrides.append((field, value))
    heal_label = assignment["heal"]
    return WorkUnit(
        index=index,
        key=key,
        workload=base,
        scale=scale,
        video=assignment["video"],
        seed=seed,
        fault_seed=fault_seed,
        replicates=replicates,
        config_overrides=tuple(config_overrides),
        camera_overrides=tuple(camera_overrides),
        faults_spec=decode_faults_value(assignment["faults"]),
        heal={"on": True, "off": False, "auto": None}[heal_label],
        payload_bytes=payload_bytes,
        transport_mode=transport_mode,
        workload_params=tuple(workload_params),
    )
