"""CLI: bench-trend tracking and the perf regression gate.

Example::

    python -m repro.tools.perf ingest --results benchmarks/results
    python -m repro.tools.perf check --results benchmarks/results
    python -m repro.tools.perf check --threshold 0.1 \\
        --metric-threshold overhead_ratio=1.0
    python -m repro.tools.perf show

Every ``bench_*.json`` under the results directory is normalized into
the shared bench envelope (:data:`BENCH_SCHEMA`): top-level ``schema``,
``bench``, ``quick``, ``usable_cpus``, and a flat ``metrics`` mapping of
dotted paths to numeric leaves (``fleet.delivery_rate``,
``runs.0.elapsed_s``).  Files written before the envelope existed are
normalized on read from their payload plus filename, so the trajectory
spans the repo's whole bench history.

``ingest`` appends one run per result file to the trajectory
(:data:`PERF_FORMAT`, committed at :data:`DEFAULT_TRAJECTORY`);
``check`` compares the current results against a rolling baseline (the
mean of the last ``--window`` ingested runs per bench) and exits 1 when
any *directional* metric regressed past its threshold.  Direction is
inferred from the metric name -- ``elapsed_s``-style timings regress
upward, ``frames_per_s``-style rates regress downward; metrics with no
inferable direction are tracked but never gated.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Iterable

#: Version tag of the normalized bench result envelope.
BENCH_SCHEMA = "repro.bench/1"

#: Version tag of the trajectory file ``ingest`` maintains.
PERF_FORMAT = "repro.perf/1"

#: Where the committed trajectory lives, relative to the repo root.
DEFAULT_TRAJECTORY = "benchmarks/results/perf_trajectory.json"

#: Default relative regression budget (20%; the CI gate proves a 30%
#: injected slowdown trips it).
DEFAULT_THRESHOLD = 0.2

#: Rolling-baseline window: how many most-recent ingested runs average
#: into the baseline a ``check`` compares against.
DEFAULT_WINDOW = 5

#: Envelope keys that are identity/bookkeeping, not performance leaves.
_ENVELOPE_KEYS = ("schema", "bench", "quick", "metrics")

#: Metric leaf names where *higher* is better, checked before the
#: generic ``_s`` timing suffix (``frames_per_s`` ends in ``_s`` too).
_HIGHER_SUFFIXES = (
    "_per_s",
    "per_field_s",
    "speedup",
    "speedup_vs_serial",
    "rate",
    "goodput",
    "kbps",
    "bps",
    "accuracy",
    "reuse_ratio",
)

#: Metric leaf names where *lower* is better.
_LOWER_SUFFIXES = ("_s", "overhead_ratio", "retries", "deaths", "skipped")


def usable_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def metric_direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` is better, or ``None`` (not gated)."""
    leaf = name.rsplit(".", 1)[-1]
    if leaf == "overhead_ratio":
        return "lower"
    if leaf == "per_field_s":
        return "lower"
    for suffix in _HIGHER_SUFFIXES:
        if leaf == suffix.lstrip("_") or leaf.endswith(suffix):
            return "higher"
    for suffix in _LOWER_SUFFIXES:
        if leaf == suffix.lstrip("_") or leaf.endswith(suffix):
            return "lower"
    return None


def flatten_metrics(record: dict[str, object]) -> dict[str, float]:
    """Every numeric leaf of *record* as a flat dotted-path mapping.

    Booleans and strings are skipped (they are facts, not measurements),
    as are the envelope's own keys.  List elements use their index as a
    path segment, so ``runs[0]["elapsed_s"]`` becomes
    ``runs.0.elapsed_s``.
    """
    flat: dict[str, float] = {}

    def visit(value: object, path: str) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, dict):
            for key in sorted(value):
                visit(value[key], f"{path}.{key}" if path else str(key))
        elif isinstance(value, list):
            for i, item in enumerate(value):
                visit(item, f"{path}.{i}" if path else str(i))

    for key in sorted(record):
        if key in _ENVELOPE_KEYS or key == "usable_cpus":
            continue
        visit(record[key], key)
    return flat


def bench_envelope(
    record: dict[str, object], *, bench: str, quick: bool
) -> dict[str, object]:
    """Stamp the shared envelope onto a bench result record (in place).

    The benchmarks call this right before writing their JSON: it adds
    ``schema``/``bench``/``quick``/``usable_cpus`` and the flattened
    ``metrics`` mapping while leaving every existing key alone, so
    consumers of the raw payload (the CI asserts, the txt reports) keep
    working unchanged.
    """
    record["schema"] = BENCH_SCHEMA
    record["bench"] = bench
    record["quick"] = bool(quick)
    record.setdefault("usable_cpus", usable_cpus())
    record["metrics"] = flatten_metrics(record)
    return record


def normalize_bench(
    payload: dict[str, object], *, source: str
) -> dict[str, object]:
    """A result payload in envelope form, whatever vintage it is.

    Already-enveloped payloads pass through (metrics recomputed if
    absent); legacy payloads infer ``bench`` from their own ``bench``
    key or the filename stem, and ``quick`` from their ``quick`` key or
    a ``_quick`` stem suffix.
    """
    stem = Path(source).stem
    if stem.startswith("bench_"):
        stem = stem[len("bench_") :]
    quick_from_name = stem.endswith("_quick")
    if quick_from_name:
        stem = stem[: -len("_quick")]
    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench:
        bench = stem
    quick = payload.get("quick")
    if not isinstance(quick, bool):
        quick = quick_from_name
    return bench_envelope(dict(payload), bench=bench, quick=quick)


def load_results(results_dir: str | Path) -> list[dict[str, object]]:
    """Every ``bench_*.json`` under *results_dir*, normalized and sorted.

    The trajectory file itself and unparseable files are skipped.
    """
    out: list[dict[str, object]] = []
    trajectory_name = Path(DEFAULT_TRAJECTORY).name
    for path in sorted(Path(results_dir).glob("bench_*.json")):
        if path.name == trajectory_name:
            continue
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        record = normalize_bench(payload, source=path.name)
        record["source"] = path.name
        out.append(record)
    return out


# ----------------------------------------------------------------------
# The trajectory file
# ----------------------------------------------------------------------
def read_trajectory(path: str | Path) -> dict[str, object]:
    """The trajectory file's contents (an empty one if absent)."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {"format": PERF_FORMAT, "runs": []}
    if not isinstance(payload, dict) or payload.get("format") != PERF_FORMAT:
        raise ValueError(f"{path} is not a {PERF_FORMAT} trajectory")
    if not isinstance(payload.get("runs"), list):
        raise ValueError(f"{path} has no runs list")
    return payload


def write_trajectory(path: str | Path, trajectory: dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _run_key(run: dict[str, object]) -> tuple[str, bool]:
    return str(run.get("bench", "")), bool(run.get("quick", False))


def baseline_for(
    trajectory: dict[str, object],
    bench: str,
    quick: bool,
    *,
    window: int = DEFAULT_WINDOW,
) -> dict[str, float]:
    """Per-metric rolling baseline: mean over the last *window* runs."""
    runs = [
        run
        for run in trajectory.get("runs", [])  # type: ignore[union-attr]
        if isinstance(run, dict) and _run_key(run) == (bench, quick)
    ]
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for run in runs[-window:]:
        metrics = run.get("metrics")
        if not isinstance(metrics, dict):
            continue
        for name in metrics:
            value = metrics[name]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                sums[name] = sums.get(name, 0.0) + float(value)
                counts[name] = counts.get(name, 0) + 1
    return {name: sums[name] / counts[name] for name in sorted(sums)}


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    *,
    threshold: float,
    metric_thresholds: dict[str, float] | None = None,
) -> list[dict[str, object]]:
    """Directional deltas of *current* vs *baseline*, worst first.

    Each row carries the metric, both values, the signed relative delta,
    the inferred direction, and whether it regressed past its threshold.
    Metrics missing from either side, zero baselines, and undirected
    metrics are tracked as rows but never flagged.
    """
    rows: list[dict[str, object]] = []
    overrides = metric_thresholds or {}
    for name in sorted(set(current) & set(baseline)):
        base = baseline[name]
        cur = current[name]
        if base == 0.0:
            continue
        delta = (cur - base) / abs(base)
        direction = metric_direction(name)
        budget = overrides.get(name.rsplit(".", 1)[-1], overrides.get(name, threshold))
        regressed = False
        if direction == "lower":
            regressed = delta > budget
        elif direction == "higher":
            regressed = delta < -budget
        rows.append(
            {
                "metric": name,
                "baseline": base,
                "current": cur,
                "delta": delta,
                "direction": direction,
                "threshold": budget,
                "regressed": regressed,
            }
        )
    rows.sort(key=lambda r: (not r["regressed"], -abs(float(r["delta"]))))  # type: ignore[arg-type]
    return rows


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_metric_thresholds(
    parser: argparse.ArgumentParser, pairs: Iterable[str]
) -> dict[str, float]:
    out: dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            parser.error(f"--metric-threshold wants NAME=VALUE, got {pair!r}")
        try:
            out[name] = float(value)
        except ValueError:
            parser.error(f"--metric-threshold {name}: bad value {value!r}")
    return out


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.perf",
        description="Track bench results over time and gate on regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--results",
            metavar="DIR",
            default="benchmarks/results",
            help="directory of bench_*.json result files",
        )
        cmd.add_argument(
            "--trajectory",
            metavar="PATH",
            default=DEFAULT_TRAJECTORY,
            help=f"the trend file (default: {DEFAULT_TRAJECTORY})",
        )

    ingest = sub.add_parser(
        "ingest", help="append the current results to the trajectory"
    )
    common(ingest)

    check = sub.add_parser(
        "check", help="gate the current results against the rolling baseline"
    )
    common(check)
    check.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression budget (default: 0.2 = 20%%)",
    )
    check.add_argument(
        "--metric-threshold",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="per-metric budget override (leaf or dotted name; repeatable)",
    )
    check.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help="rolling-baseline window in runs (default: 5)",
    )
    check.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON"
    )

    show = sub.add_parser("show", help="print the trajectory's contents")
    common(show)

    return parser


def _cmd_ingest(args: argparse.Namespace) -> int:
    trajectory = read_trajectory(args.trajectory)
    runs = trajectory["runs"]
    assert isinstance(runs, list)
    results = load_results(args.results)
    for record in results:
        runs.append(
            {
                "bench": record["bench"],
                "quick": record["quick"],
                "source": record["source"],
                "usable_cpus": record.get("usable_cpus"),
                "metrics": record["metrics"],
            }
        )
    write_trajectory(args.trajectory, trajectory)
    print(
        f"ingested {len(results)} result files -> {args.trajectory} "
        f"({len(runs)} runs total)"
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    parser = build_parser()
    overrides = _parse_metric_thresholds(parser, args.metric_threshold)
    trajectory = read_trajectory(args.trajectory)
    results = load_results(args.results)
    report: list[dict[str, object]] = []
    regressions = 0
    for record in results:
        bench = str(record["bench"])
        quick = bool(record["quick"])
        baseline = baseline_for(trajectory, bench, quick, window=args.window)
        metrics = record["metrics"]
        assert isinstance(metrics, dict)
        rows = compare(
            metrics,
            baseline,
            threshold=args.threshold,
            metric_thresholds=overrides,
        )
        bad = [row for row in rows if row["regressed"]]
        regressions += len(bad)
        report.append(
            {
                "bench": bench,
                "quick": quick,
                "source": record["source"],
                "compared": len(rows),
                "regressions": bad,
            }
        )
        if not args.json:
            tag = f"{bench}{'/quick' if quick else ''}"
            if not baseline:
                print(f"  {tag:<28} no baseline yet (run ingest first)")
                continue
            print(f"  {tag:<28} {len(rows)} metrics vs baseline, {len(bad)} regressed")
            for row in bad:
                print(
                    f"    REGRESSED {row['metric']}: "
                    f"{row['baseline']:g} -> {row['current']:g} "
                    f"({float(row['delta']):+.1%}, budget "  # type: ignore[arg-type]
                    f"{float(row['threshold']):.0%} {row['direction']}-is-better)"  # type: ignore[arg-type]
                )
    if args.json:
        print(json.dumps({"format": PERF_FORMAT, "checks": report}, sort_keys=True))
    elif regressions == 0:
        print("perf gate: ok, no directional metric past its budget")
    else:
        print(f"perf gate: {regressions} regressed metrics")
    return 1 if regressions else 0


def _cmd_show(args: argparse.Namespace) -> int:
    trajectory = read_trajectory(args.trajectory)
    runs = trajectory["runs"]
    assert isinstance(runs, list)
    print(f"trajectory: {args.trajectory} ({len(runs)} runs)")
    tally: dict[tuple[str, bool], int] = {}
    for run in runs:
        if isinstance(run, dict):
            tally[_run_key(run)] = tally.get(_run_key(run), 0) + 1
    for (bench, quick) in sorted(tally):
        tag = f"{bench}{'/quick' if quick else ''}"
        print(f"  {tag:<28} {tally[(bench, quick)]} runs")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {"ingest": _cmd_ingest, "check": _cmd_check, "show": _cmd_show}
    try:
        return commands[args.command](args)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
