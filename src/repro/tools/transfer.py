"""CLI: deliver a payload over the simulated link with a transport scheme.

Example::

    python -m repro.tools.transfer --bytes 160 --mode fountain
    python -m repro.tools.transfer --file logo.bin --mode arq --loss 0.2
    python -m repro.tools.transfer --bytes 96 --mode all --json
    python -m repro.tools.transfer --mode arq --faults 'drop:p=0.1;blackout:at=0.5,dur=0.5'
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time

import numpy as np

from repro.analysis.experiments import ExperimentScale
from repro.core.pipeline import run_transport_link
from repro.obs import RunTelemetry
from repro.tools.simulate import (
    LiveSession,
    add_fault_arguments,
    add_live_arguments,
    add_telemetry_argument,
    parse_fault_plan,
    write_telemetry,
)

_MODES = ("plain", "fountain", "arq", "carousel")


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.transfer",
        description="Deliver a payload over the InFrame link via repro.transport.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--file", help="payload file to transfer")
    source.add_argument(
        "--bytes",
        type=int,
        default=120,
        help="size of a random payload when --file is not given",
    )
    parser.add_argument(
        "--mode",
        choices=_MODES + ("all",),
        default="fountain",
        help="transport scheme ('all' compares every mode on one line each)",
    )
    parser.add_argument(
        "--video",
        choices=("gray", "dark-gray", "video"),
        default="video",
        help="input content the packets are multiplexed onto",
    )
    parser.add_argument("--delta", type=float, default=30.0, help="chessboard amplitude")
    parser.add_argument("--tau", type=int, default=12, help="data-frame cycle (displayed frames)")
    parser.add_argument(
        "--scale",
        choices=("quick", "benchmark", "full"),
        default="quick",
        help="spatial scale of the experiment",
    )
    parser.add_argument("--seed", type=int, default=1, help="noise seed")
    parser.add_argument("--rs-n", type=int, default=60, help="inner RS codeword length")
    parser.add_argument("--rs-k", type=int, default=24, help="inner RS data bytes")
    parser.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="extra GOB loss stacked on the PHY's own impairments",
    )
    parser.add_argument(
        "--feedback-loss", type=float, default=0.0, help="ARQ NACK loss probability"
    )
    parser.add_argument(
        "--max-rounds", type=int, default=6, help="bound on forward passes"
    )
    parser.add_argument(
        "--join-offset",
        type=int,
        default=0,
        help="first carousel symbol observed (mid-stream join)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit TransportStats as JSON"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per forward pass (default: in-process)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the runtime's per-stage wall/CPU breakdown per mode",
    )
    add_telemetry_argument(parser)
    add_fault_arguments(parser)
    add_live_arguments(parser)
    group = parser.add_argument_group("degradation policy")
    group.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        help="cap on retransmitted packets across all ARQ rounds",
    )
    group.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="give up on ARQ rounds past this modelled elapsed time",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns 0 iff the requested mode delivered.

    ``--mode all`` is a comparison report (the plain baseline is allowed
    -- often expected -- to fail there) and always exits 0.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    faults, heal = parse_fault_plan(parser, args)
    if args.retry_budget is not None and args.retry_budget < 0:
        parser.error(f"--retry-budget must be >= 0, got {args.retry_budget}")
    if args.deadline_s is not None and args.deadline_s <= 0:
        parser.error(f"--deadline-s must be positive, got {args.deadline_s:g}")
    if not 0.0 <= args.loss <= 1.0:
        parser.error(f"--loss must be in [0.0, 1.0], got {args.loss:g}")
    if not 0.0 <= args.feedback_loss <= 1.0:
        parser.error(
            f"--feedback-loss must be in [0.0, 1.0], got {args.feedback_loss:g}"
        )
    if args.file is not None:
        try:
            with open(args.file, "rb") as handle:
                payload = handle.read()
        except OSError as exc:
            parser.error(str(exc))
        if not payload:
            parser.error(f"payload file {args.file} is empty")
    else:
        rng = np.random.default_rng(args.seed)
        payload = rng.integers(0, 256, max(1, args.bytes), dtype=np.uint8).tobytes()

    scale = getattr(ExperimentScale, args.scale)()
    config = scale.config(amplitude=args.delta, tau=args.tau)
    video = scale.video(args.video)
    modes = _MODES if args.mode == "all" else (args.mode,)

    if not args.json:
        print(
            f"InFrame transfer: {len(payload)} B over video={args.video} "
            f"delta={args.delta:g} tau={args.tau} scale={args.scale} "
            f"RS({args.rs_n},{args.rs_k}) loss={args.loss:g}"
        )

    results = []
    records = []
    telemetries: list[RunTelemetry | None] = []
    live = LiveSession(args)
    with live:
        for mode in modes:
            wall0 = time.perf_counter()
            run = run_transport_link(
                config,
                video,
                payload,
                mode=mode,
                camera=scale.camera(),
                rs_n=args.rs_n,
                rs_k=args.rs_k,
                seed=args.seed,
                max_rounds=args.max_rounds,
                extra_gob_loss=args.loss,
                feedback_loss=args.feedback_loss,
                join_offset=args.join_offset,
                workers=args.workers,
                faults=faults,
                heal=heal,
                retry_budget=args.retry_budget,
                deadline_s=args.deadline_s,
            )
            elapsed_s = time.perf_counter() - wall0
            results.append(run.stats)
            telemetries.append(run.telemetry)
            record = dataclasses.asdict(run.stats)
            record["elapsed_s"] = elapsed_s
            frames = run.runtime.frames if run.runtime is not None else 0
            record["frames_per_s"] = frames / elapsed_s if elapsed_s > 0 else 0.0
            if run.degradation is not None:
                record["degradation"] = run.degradation.as_dict()
            if args.profile and run.runtime is not None:
                record["runtime"] = run.runtime.as_dict()
            records.append(record)
            if not args.json:
                print(f"  {run.stats.row()}  [{elapsed_s:.2f} s]")
                if run.arq_stats is not None:
                    print(f"           {run.arq_stats.row()}")
                if run.degradation is not None:
                    print(run.degradation.summary())
                if args.profile and run.runtime is not None:
                    print(run.runtime.summary())

    write_telemetry(args.telemetry_out, RunTelemetry.merge(telemetries))
    profile = live.profile_summary()
    if profile is not None and not args.json:
        print(profile)
    if args.json:
        print(json.dumps(records[0] if args.mode != "all" else records, indent=2))
    if args.mode == "all":
        return 0
    return 0 if all(stats.delivered for stats in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
