"""CLI: score a multiplexing configuration with the simulated user panel.

Example::

    python -m repro.tools.flicker --delta 30 --tau 12 --brightness 127
"""

from __future__ import annotations

import argparse

from repro.analysis.experiments import flicker_timeline
from repro.analysis.userstudy import SimulatedPanel


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.flicker",
        description="Rate a configuration on the paper's 0-4 flicker scale.",
    )
    parser.add_argument("--delta", type=float, default=20.0, help="chessboard amplitude")
    parser.add_argument("--tau", type=int, default=12, help="data-frame cycle")
    parser.add_argument("--brightness", type=float, default=127.0, help="carrier pixel level")
    parser.add_argument("--duration", type=float, default=0.5, help="scored seconds")
    parser.add_argument("--subjects", type=int, default=8, help="panel size")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    timeline = flicker_timeline(args.delta, args.tau, args.brightness)
    panel = SimulatedPanel(n_subjects=args.subjects)
    result = panel.study(timeline, duration_s=args.duration)

    print(
        f"Flicker study: delta={args.delta:g} tau={args.tau} "
        f"brightness={args.brightness:g} ({args.subjects} subjects)"
    )
    print(f"  ratings      : {[int(s) for s in result.scores]}")
    print(f"  mean +/- std : {result.mean_score:.2f} +/- {result.std_score:.2f}")
    print(f"  model score  : {result.model_score:.2f}")
    labels = {
        0: "no difference at all",
        1: "almost unnoticeable",
        2: "merely noticeable",
        3: "evident flicker",
        4: "strong flicker or artifact",
    }
    nearest = min(labels, key=lambda k: abs(k - result.mean_score))
    print(f"  verdict      : ~{labels[nearest]} "
          f"({'satisfactory' if result.satisfactory else 'not satisfactory'})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
