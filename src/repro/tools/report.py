"""CLI: render a run's telemetry -- terminal summary, JSON, Chrome trace.

Reads the ``--telemetry-out`` files the other tools write (``simulate``,
``transfer``, ``sweep``) and renders them without re-running anything.
Several files merge into one report (metric merges are exact; see
:mod:`repro.obs.metrics`).

Example::

    python -m repro.tools.simulate --telemetry-out run.json
    python -m repro.tools.report run.json
    python -m repro.tools.report run.json --json | jq .metrics
    python -m repro.tools.report run.json --trace-out trace.json
    # then load trace.json in Perfetto or chrome://tracing
"""

from __future__ import annotations

import argparse
import glob
import json
from pathlib import Path
from typing import cast

from repro.obs import RunTelemetry

#: Chrome trace_event phases the exporter emits.
_TRACE_PHASES = {"X", "i", "M"}


def expand_telemetry_paths(args: list[str]) -> list[str]:
    """Expand each CLI argument into concrete telemetry file paths.

    A directory argument expands to its ``*.json`` files; an argument
    containing glob magic (``*?[``) expands through :mod:`glob`; a plain
    path passes through untouched.  Expansions are sorted so a fleet's
    worth of per-receiver files merges in a stable order, and an
    argument that expands to nothing raises :class:`ValueError` (a typo
    should not silently vanish from the report).
    """
    paths: list[str] = []
    for arg in args:
        if Path(arg).is_dir():
            matches = sorted(str(p) for p in Path(arg).glob("*.json"))
            if not matches:
                raise ValueError(f"{arg}: directory contains no .json files")
            paths.extend(matches)
        elif glob.has_magic(arg):
            matches = sorted(glob.glob(arg))
            if not matches:
                raise ValueError(f"{arg}: glob matched no files")
            paths.extend(matches)
        else:
            paths.append(arg)
    return paths


def load_telemetry(path: str | Path) -> RunTelemetry:
    """Read one ``--telemetry-out`` file back into a :class:`RunTelemetry`.

    Raises
    ------
    ValueError:
        If the file is not a ``repro.obs/1`` telemetry payload.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a telemetry JSON object")
    return RunTelemetry.from_dict(payload)


def validate_chrome_trace(trace: object) -> list[str]:
    """Schema-sanity problems with a Chrome ``trace_event`` payload.

    Returns an empty list when the payload is loadable by Perfetto /
    ``chrome://tracing``: a ``traceEvents`` list whose entries carry the
    required ``name``/``ph``/``pid``/``tid`` fields, with ``ts`` and
    ``dur`` where their phase demands them.  Used by the CI smoke job and
    the tests; deliberately a checker, not an exception, so callers can
    report every problem at once.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _TRACE_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if phase in ("X", "i") and not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: phase {phase!r} needs a numeric 'ts'")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: complete event needs a numeric 'dur'")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant event needs scope 's' in t/p/g")
    return problems


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.report",
        description="Render repro.obs telemetry files written by the other tools.",
    )
    parser.add_argument(
        "files",
        nargs="+",
        metavar="TELEMETRY_JSON",
        help="--telemetry-out files, directories of them, or globs "
        "(e.g. runs/ or 'runs/receiver-*.json'); everything merges into "
        "one report",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the (merged) telemetry as a JSON object instead of the summary",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also write the spans as Chrome trace_event JSON (Perfetto-loadable)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        files = expand_telemetry_paths(args.files)
    except ValueError as exc:
        parser.error(str(exc))
    runs: list[RunTelemetry | None] = []
    for path in files:
        try:
            runs.append(load_telemetry(path))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"{path}: {exc}")
    merged = RunTelemetry.merge(runs)
    if merged is None:  # pragma: no cover - expansion guarantees a file
        parser.error("no telemetry loaded")
    if args.trace_out:
        trace = merged.chrome_trace()
        problems = validate_chrome_trace(trace)
        if problems:  # pragma: no cover - exporter and validator agree
            parser.error("trace export failed validation: " + "; ".join(problems))
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
        if not args.json:
            n_events = len(cast("list[object]", trace["traceEvents"]))
            print(f"wrote {n_events} trace events to {args.trace_out}")
    if args.json:
        print(json.dumps(merged.as_dict(), indent=2))
    else:
        print(merged.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
