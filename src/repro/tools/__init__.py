"""Command-line tools.

Each tool is runnable as a module::

    python -m repro.tools.simulate --video gray --delta 20 --tau 12
    python -m repro.tools.budget --brightness 127
    python -m repro.tools.flicker --delta 30 --tau 12
    python -m repro.tools.sweep --parameter tau --values 8 10 12 14 16

They wrap the same experiment harness the benchmarks use, for quick
interactive exploration without writing a script.
"""
