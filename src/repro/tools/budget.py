"""CLI: print the screen->camera link budget at an operating point.

Example::

    python -m repro.tools.budget --brightness 127 --lux 400
"""

from __future__ import annotations

import argparse

from repro.camera.capture import CameraModel
from repro.channel.impairments import AmbientLight, ChannelImpairments
from repro.channel.link import ScreenCameraLink
from repro.display.panel import DisplayPanel


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.budget",
        description="Small-signal link budget of the screen->camera channel.",
    )
    parser.add_argument("--brightness", type=float, default=127.0, help="video pixel level")
    parser.add_argument("--lux", type=float, default=400.0, help="ambient illuminance")
    parser.add_argument("--exposure", type=float, default=1 / 500, help="camera exposure (s)")
    parser.add_argument("--peak", type=float, default=300.0, help="panel peak luminance cd/m^2")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from repro.display.gamma import GammaCurve

    panel = DisplayPanel(gamma_curve=GammaCurve(peak_luminance=args.peak))
    camera = CameraModel(exposure_s=args.exposure)
    impairments = ChannelImpairments(ambient=AmbientLight(illuminance_lux=args.lux))
    link = ScreenCameraLink(panel, camera, impairments).auto_exposed()
    budget = link.budget(operating_pixel_value=args.brightness)

    print(f"Link budget at pixel level {args.brightness:g}, {args.lux:g} lux ambient:")
    print(f"  counts per delta unit : {budget.counts_per_delta:.3f}")
    print(f"  noise floor           : {budget.noise_floor_counts:.3f} counts RMS")
    print(f"  SNR at delta=20       : {budget.snr_at_delta_20:.1f}")
    print(f"  ambient contrast loss : {budget.ambient_contrast_loss * 100:.1f}%")
    verdict = "comfortable" if budget.snr_at_delta_20 > 6 else "marginal"
    print(f"  verdict               : {verdict} for the paper's delta=20 operating point")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
