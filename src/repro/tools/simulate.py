"""CLI: run one end-to-end link simulation and print Figure-7 statistics.

Example::

    python -m repro.tools.simulate --video gray --delta 20 --tau 12
    python -m repro.tools.simulate --video video --delta 30 --scale full
    python -m repro.tools.simulate --json | jq .bit_accuracy
    python -m repro.tools.simulate --workers 4 --profile
    python -m repro.tools.simulate --faults 'drop:p=0.1;blackout:at=0.5,dur=0.5'
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from dataclasses import replace

from repro.analysis.experiments import ExperimentScale
from repro.core.pipeline import run_link
from repro.faults import FaultPlan
from repro.obs import (
    LiveCollector,
    RunTelemetry,
    SamplingProfiler,
    install_live,
)


def add_live_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared live-telemetry / sampling-profiler option group.

    Used by simulate, transfer, serve and campaign alike; pair it with
    :class:`LiveSession` in ``main()``.
    """
    group = parser.add_argument_group("live telemetry")
    group.add_argument(
        "--snapshot-out",
        metavar="PATH",
        default=None,
        help="stream repro.obs.live/1 JSONL snapshots here at the "
        "snapshot cadence (tail them with python -m repro.tools.watch)",
    )
    group.add_argument(
        "--snapshot-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="live snapshot cadence (default: 1.0)",
    )
    group.add_argument(
        "--profile-sampling",
        action="store_true",
        help="attach the sampling profiler and print the per-stage "
        "breakdown after the run",
    )
    group.add_argument(
        "--flamegraph-out",
        metavar="PATH",
        default=None,
        help="write the sampled stacks in collapsed-stack format "
        "(implies --profile-sampling)",
    )


class LiveSession:
    """Install/tear down the live collector + profiler a CLI asked for.

    Entering installs a process-wide :class:`~repro.obs.LiveCollector`
    (when ``--snapshot-out`` was given) and starts a
    :class:`~repro.obs.SamplingProfiler` (for ``--profile-sampling`` /
    ``--flamegraph-out``).  Exiting stops both, writes the flamegraph,
    and uninstalls the collector; :attr:`profiler` stays readable so the
    CLI can print the stage breakdown after the run.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.collector: LiveCollector | None = None
        self.profiler: SamplingProfiler | None = None
        self._flamegraph_out: str | None = getattr(args, "flamegraph_out", None)
        if getattr(args, "snapshot_out", None) is not None:
            if args.snapshot_interval <= 0.0:
                raise ValueError(
                    f"--snapshot-interval must be > 0, got {args.snapshot_interval}"
                )
            self.collector = LiveCollector(
                interval_s=args.snapshot_interval, snapshot_path=args.snapshot_out
            )
        if getattr(args, "profile_sampling", False) or self._flamegraph_out:
            self.profiler = SamplingProfiler()

    def __enter__(self) -> "LiveSession":
        if self.collector is not None:
            install_live(self.collector)
            self.collector.start()
        if self.profiler is not None:
            self.profiler.start()
        return self

    def __exit__(self, *exc: object) -> None:
        if self.profiler is not None:
            self.profiler.stop()
            if self._flamegraph_out is not None:
                self.profiler.report().write_collapsed(self._flamegraph_out)
        if self.collector is not None:
            self.collector.stop()
            install_live(None)

    def profile_summary(self) -> str | None:
        """The profiler's stage breakdown, or None when not profiling."""
        if self.profiler is None:
            return None
        return self.profiler.report().summary()


def add_telemetry_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--telemetry-out`` option (see ``repro.tools.report``)."""
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help="write the run's repro.obs telemetry as JSON "
        "(render it with python -m repro.tools.report)",
    )


def write_telemetry(path: str | None, telemetry: RunTelemetry | None) -> None:
    """Write a run's ``RunTelemetry`` (if any) where ``--telemetry-out`` asked."""
    if path is None or telemetry is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(telemetry.as_dict(), handle, indent=2)


def add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--faults`` / ``--no-heal`` / ``--fault-seed`` group."""
    group = parser.add_argument_group("fault injection")
    group.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject deterministic faults, e.g. 'drop:p=0.1;flip:at=0.5' "
        "(kinds: drop dup reorder flip drift jitter exposure ambient "
        "blackout corrupt truncate)",
    )
    group.add_argument(
        "--no-heal",
        action="store_true",
        help="disable the self-healing decoder (healing is on whenever "
        "--faults is given)",
    )
    group.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the fault plan's random draws (default: --seed)",
    )


def parse_fault_plan(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> tuple[FaultPlan | None, bool | None]:
    """Resolve the fault group into ``run_link``'s (faults, heal) pair."""
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.parse(
                args.faults,
                seed=args.fault_seed if args.fault_seed is not None else args.seed,
            )
        except ValueError as exc:
            parser.error(f"--faults: {exc}")
    heal: bool | None = False if args.no_heal else None
    return plan, heal


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.simulate",
        description="Simulate the InFrame screen->camera link end to end.",
    )
    parser.add_argument(
        "--video",
        choices=("gray", "dark-gray", "video"),
        default="gray",
        help="input content (the paper's three clips)",
    )
    parser.add_argument("--delta", type=float, default=20.0, help="chessboard amplitude")
    parser.add_argument("--tau", type=int, default=12, help="data-frame cycle (displayed frames)")
    parser.add_argument(
        "--scale",
        choices=("quick", "benchmark", "full"),
        default="benchmark",
        help="spatial scale of the experiment",
    )
    parser.add_argument("--seed", type=int, default=1, help="noise seed")
    parser.add_argument(
        "--screen-fill",
        type=float,
        default=1.0,
        help="fraction of the capture the screen subtends (1.0 = paper's 50 cm)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the LinkStats as a JSON object instead of the report",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the capture+decode stages (default: in-process)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the runtime's per-stage wall/CPU breakdown",
    )
    add_telemetry_argument(parser)
    add_fault_arguments(parser)
    add_live_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    faults, heal = parse_fault_plan(parser, args)
    scale = getattr(ExperimentScale, args.scale)()
    config = scale.config(amplitude=args.delta, tau=args.tau)
    camera = scale.camera()
    if args.screen_fill < 1.0:
        camera = replace(camera, screen_fill=args.screen_fill)

    if not args.json:
        print(
            f"InFrame link: video={args.video} delta={args.delta:g} tau={args.tau} "
            f"scale={args.scale} fill={args.screen_fill:g}"
        )
        print(
            f"  grid {config.block_rows}x{config.block_cols} blocks of "
            f"{config.block_side_px}px, {config.bits_per_frame} bits/frame, "
            f"{config.data_frame_rate_hz:g} frames/s"
        )
    wall0 = time.perf_counter()
    with LiveSession(args) as live:
        run = run_link(
            config,
            scale.video(args.video),
            camera=camera,
            seed=args.seed,
            workers=args.workers,
            faults=faults,
            heal=heal,
        )
    elapsed_s = time.perf_counter() - wall0
    stats = run.stats
    write_telemetry(args.telemetry_out, run.telemetry)
    if args.json:
        record = dataclasses.asdict(stats)
        record["throughput_kbps"] = stats.throughput_kbps
        record["video"] = args.video
        record["delta"] = args.delta
        record["tau"] = args.tau
        record["scale"] = args.scale
        record["seed"] = args.seed
        record["elapsed_s"] = elapsed_s
        record["frames_per_s"] = len(run.captures) / elapsed_s if elapsed_s > 0 else 0.0
        if run.degradation is not None:
            record["degradation"] = run.degradation.as_dict()
        if args.profile and run.runtime is not None:
            record["runtime"] = run.runtime.as_dict()
        if live.profiler is not None:
            record["profile"] = live.profiler.report().as_dict()
        print(json.dumps(record, indent=2))
        return 0
    print(f"  decoded data frames : {stats.n_data_frames}")
    print(f"  available GOBs      : {stats.available_gob_ratio * 100:.1f}%")
    print(f"  GOB error rate      : {stats.gob_error_rate * 100:.1f}%")
    print(f"  parity-detected     : {stats.parity_error_rate * 100:.1f}%")
    print(f"  bit accuracy        : {stats.bit_accuracy * 100:.2f}%")
    print(f"  throughput          : {stats.throughput_kbps:.2f} kbps")
    print(
        f"  wall clock          : {elapsed_s:.2f} s "
        f"({len(run.captures) / elapsed_s:.1f} frames/s)"
    )
    if run.degradation is not None:
        print(run.degradation.summary())
    if args.profile and run.runtime is not None:
        print(run.runtime.summary())
    profile = live.profile_summary()
    if profile is not None:
        print(profile)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
