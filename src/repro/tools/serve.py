"""CLI: broadcast one carousel to a simulated receiver fleet.

Example::

    python -m repro.tools.serve --cohorts 'lobby:n=24,join_spread=1.0'
    python -m repro.tools.serve --scale quick --workers 4 --json
    python -m repro.tools.serve \\
        --cohorts 'near:n=16|far:n=8,distance=1.5,faults=drop:p=0.15' \\
        --report-out fleet.json --telemetry-out fleet-telemetry.json
"""

from __future__ import annotations

import argparse
import json
import time

from repro.analysis.experiments import ExperimentScale
from repro.serve import (
    BroadcastSession,
    CohortSpecError,
    deterministic_payload,
    parse_cohorts,
    run_fleet,
)
from repro.tools.simulate import (
    LiveSession,
    add_live_arguments,
    add_telemetry_argument,
    write_telemetry,
)

#: Two cohorts, one faulted -- a representative default fleet.
_DEFAULT_COHORTS = (
    "near:n=6,join_spread=0.8"
    "|far:n=4,distance=1.4,join_spread=0.8,faults=drop:p=0.1"
)


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.serve",
        description="Serve one InFrame broadcast carousel to a fleet of "
        "simulated receivers (render-once fan-out).",
    )
    parser.add_argument(
        "--video",
        choices=("gray", "dark-gray", "video"),
        default="gray",
        help="looping display content (the paper's clips)",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "benchmark", "full"),
        default="quick",
        help="spatial scale of the experiment",
    )
    parser.add_argument("--delta", type=float, default=20.0, help="chessboard amplitude")
    parser.add_argument(
        "--payload-bytes",
        type=int,
        default=96,
        help="carousel payload size (content is deterministic from --seed)",
    )
    parser.add_argument(
        "--cohorts",
        metavar="SPEC",
        default=_DEFAULT_COHORTS,
        help="fleet description, e.g. 'near:n=16|far:n=8,distance=1.5,"
        "faults=drop:p=0.15' (see docs/broadcast.md for the grammar)",
    )
    parser.add_argument(
        "--dwell",
        type=float,
        default=4.0,
        help="default watch window in seconds for cohorts without dwell=",
    )
    parser.add_argument("--seed", type=int, default=1, help="fleet + noise seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the fan-out (default: in-process)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the fleet report as a JSON object instead of the summary",
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="also write the fleet report JSON to a file",
    )
    add_telemetry_argument(parser)
    add_live_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.payload_bytes < 1:
        parser.error(f"--payload-bytes must be >= 1, got {args.payload_bytes}")
    try:
        cohorts = parse_cohorts(args.cohorts, seed=args.seed)
    except CohortSpecError as exc:
        parser.error(f"--cohorts: {exc}")

    scale = getattr(ExperimentScale, args.scale)()
    config = scale.config(amplitude=args.delta)
    payload = deterministic_payload(args.payload_bytes, seed=args.seed)
    base_camera = scale.camera()
    wall0 = time.perf_counter()
    live = LiveSession(args)
    with live, BroadcastSession(config, scale.video(args.video), payload) as session:
        if not args.json:
            print(
                f"broadcast: video={args.video} scale={args.scale} "
                f"payload={args.payload_bytes}B k={session.k} "
                f"cycle={session.cycle_packets} packets ({session.cycle_s:.2f} s)"
            )
        fleet = run_fleet(
            session,
            cohorts,
            base_camera=base_camera,
            seed=args.seed,
            workers=args.workers,
            default_dwell_s=args.dwell,
        )
    elapsed_s = time.perf_counter() - wall0
    write_telemetry(args.telemetry_out, fleet.telemetry)
    report_dict = fleet.report.as_dict()
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report_dict, handle, indent=2)
    if args.json:
        report_dict["elapsed_s"] = elapsed_s
        print(json.dumps(report_dict, indent=2))
    else:
        print(fleet.report.summary())
        print(f"  wall clock: {elapsed_s:.2f} s")
        profile = live.profile_summary()
        if profile is not None:
            print(profile)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
