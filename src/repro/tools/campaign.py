"""CLI: run, resume, and inspect scenario-matrix campaigns.

Example::

    python -m repro.tools.campaign run \\
        --spec 'parameter=tau:8,12,16|faults=none,drop:p=0.1|heal=on,off' \\
        --journal runs/tau.jsonl --scale quick --workers 4
    python -m repro.tools.campaign resume --journal runs/tau.jsonl
    python -m repro.tools.campaign status --journal runs/tau.jsonl
    python -m repro.tools.campaign report --journal runs/tau.jsonl --json

``run`` executes a fresh campaign (journaling every transition when
``--journal`` is given); ``resume`` continues a journaled campaign after
any crash, keeping completed units and re-leasing the rest; ``status``
and ``report`` only replay the journal -- nothing executes; ``compact``
rewrites a long journal to header + terminal records.

Supervision (``--heartbeat-s``/``--stuck-after``/``--quarantine-after``)
is active whenever a journal is given: workers heartbeat into the
journal, heartbeat-stale leases are fenced and reclaimed immediately,
and poison units are quarantined.  SIGTERM drains gracefully
(``--drain-timeout``).  The :data:`repro.campaign.chaos.CHAOS_ENV`
environment variable arms in-process fault injection (heartbeat
drop/delay, journal append tears) for the chaos harness.
"""

from __future__ import annotations

import argparse
import json
from typing import cast

from repro.campaign import (
    CampaignJournal,
    CampaignJournalError,
    CampaignMaster,
    CampaignOutcome,
    CampaignQueueError,
    CampaignReport,
    CampaignSpecError,
    journal_status,
    report_from_journal,
)
from repro.campaign.chaos import tamper_from_env
from repro.campaign.journal import compact_journal
from repro.campaign.supervise import SupervisePolicy
from repro.tools.simulate import LiveSession, add_live_arguments


def _add_journal_argument(
    parser: argparse.ArgumentParser, required: bool = True
) -> None:
    parser.add_argument(
        "--journal",
        metavar="PATH",
        required=required,
        default=None,
        help="the campaign's append-only JSONL transition log",
    )


def _add_report_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="write the aggregated report as JSON",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as canonical JSON instead of a summary",
    )


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for unit execution (default: serial)",
    )
    parser.add_argument(
        "--heartbeat-s", type=float, default=1.0, metavar="SECONDS",
        help="worker heartbeat interval (journaled runs only)",
    )
    parser.add_argument(
        "--stuck-after", type=float, default=None, metavar="SECONDS",
        help="heartbeat staleness that reclaims a lease "
        "(default: 4 x heartbeat interval)",
    )
    parser.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="reclaims or worker deaths before a unit is quarantined",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="after SIGTERM, how long in-flight units get to finish",
    )
    add_live_arguments(parser)


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.campaign",
        description="Resumable master/worker campaigns over the scenario matrix.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a fresh campaign")
    run.add_argument(
        "--spec",
        required=True,
        help="campaign axes, e.g. 'parameter=tau:8,12|faults=none,drop:p=0.1|heal=on,off'",
    )
    _add_journal_argument(run, required=False)
    run.add_argument(
        "--scale", choices=("quick", "benchmark", "full"), default="benchmark"
    )
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--payload-bytes", type=int, default=64,
        help="payload size for transport/fleet workloads",
    )
    run.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed namespace for fault plans (default: derived per unit)",
    )
    run.add_argument(
        "--lease-timeout", type=float, default=600.0, metavar="SECONDS",
        help="how long a unit lease stays valid",
    )
    run.add_argument(
        "--max-attempts", type=int, default=3,
        help="tries a retryably-failing unit gets before reporting failed",
    )
    _add_run_arguments(run)
    _add_report_arguments(run)

    resume = sub.add_parser("resume", help="continue a journaled campaign")
    _add_journal_argument(resume)
    _add_run_arguments(resume)
    _add_report_arguments(resume)

    status = sub.add_parser("status", help="replay a journal into a status snapshot")
    _add_journal_argument(status)
    status.add_argument("--json", action="store_true", help="print JSON")

    rep = sub.add_parser("report", help="aggregate whatever a journal recorded")
    _add_journal_argument(rep)
    _add_report_arguments(rep)

    compact = sub.add_parser(
        "compact", help="rewrite a journal to header + terminal records"
    )
    _add_journal_argument(compact)
    compact.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the compacted journal here instead of in place",
    )

    return parser


def _write_report(path: str | None, report: CampaignReport) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _emit_report(args: argparse.Namespace, report: CampaignReport) -> None:
    _write_report(args.report_out, report)
    if args.json:
        print(report.report_json())
    else:
        print(report.summary())


def _chaos_journal(path: str) -> CampaignJournal:
    """The master's journal, with chaos tear injection armed if enabled."""
    return CampaignJournal(path, tamper=tamper_from_env(path, role="master"))


def _policy(args: argparse.Namespace, lease_timeout_s: float) -> SupervisePolicy:
    return SupervisePolicy.resolve(
        heartbeat_s=args.heartbeat_s,
        stuck_after_s=args.stuck_after,
        quarantine_after=args.quarantine_after,
        lease_timeout_s=lease_timeout_s,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    journal = _chaos_journal(args.journal) if args.journal else None
    master = CampaignMaster(
        args.spec,
        journal=journal,
        scale=args.scale,
        seed=args.seed,
        payload_bytes=args.payload_bytes,
        fault_seed=args.fault_seed,
        workers=args.workers,
        lease_timeout_s=args.lease_timeout,
        max_attempts=args.max_attempts,
        supervise=_policy(args, args.lease_timeout),
        drain_timeout_s=args.drain_timeout,
    )
    live = LiveSession(args)
    with live:
        outcome = master.run()
    _emit_report(args, outcome.report)
    _emit_profile(args, live)
    return _exit_code(outcome)


def _cmd_resume(args: argparse.Namespace) -> int:
    journal = _chaos_journal(args.journal)
    header = journal.read().header
    lease_timeout_s = (
        float(cast(float, header["lease_timeout_s"])) if header else 600.0
    )
    master = CampaignMaster.resume(
        journal,
        workers=args.workers,
        supervise=_policy(args, lease_timeout_s),
        drain_timeout_s=args.drain_timeout,
    )
    live = LiveSession(args)
    with live:
        outcome = master.run(resume=True)
    _emit_report(args, outcome.report)
    _emit_profile(args, live)
    return _exit_code(outcome)


def _emit_profile(args: argparse.Namespace, live: LiveSession) -> None:
    profile = live.profile_summary()
    if profile is not None and not args.json:
        print(profile)


def _exit_code(outcome: CampaignOutcome) -> int:
    """0 when every unit has a standing result (ok or invalid), 1 otherwise."""
    counts = outcome.report.counts()
    return 0 if counts["failed"] == 0 and counts["missing"] == 0 else 1


def _format_age(seconds: object) -> str:
    if seconds is None:
        return "never"
    return f"{float(cast(float, seconds)):.1f}s"


def _cmd_status(args: argparse.Namespace) -> int:
    snapshot = journal_status(CampaignJournal(args.journal))
    if args.json:
        print(json.dumps(snapshot, sort_keys=True))
        return 0
    counts = snapshot["counts"]
    assert isinstance(counts, dict)
    print(f"campaign: {snapshot['spec']}")
    print(
        f"  scale={snapshot['scale']} seed={snapshot['seed']} "
        f"units={snapshot['units']}"
    )
    print("  " + " ".join(f"{name}={counts[name]}" for name in sorted(counts)))
    leases = cast("list[dict[str, object]]", snapshot["leases"])
    for lease in leases:
        print(
            f"    [ leased] {lease['unit']}  owner={lease['owner']} "
            f"fence={lease['fence']} age={_format_age(lease['lease_age_s'])} "
            f"heartbeat={_format_age(lease['heartbeat_age_s'])} "
            f"(seq {lease['heartbeat_seq']}) "
            f"expires_in={_format_age(lease['expires_in_s'])}"
        )
    quarantined = cast("list[dict[str, object]]", snapshot["quarantined"])
    for row in quarantined:
        print(
            f"    [ poison] {row['unit']}  reclaims={row['reclaims']} "
            f"deaths={row['deaths']}: {row['error']}"
        )
    for warning in cast("list[str]", snapshot["warnings"]):
        print(f"  warning: {warning}")
    if snapshot["torn_tail"]:
        print("  note: journal ends in a crash-torn line (ignored)")
    if snapshot["drained"]:
        print("  note: campaign was drained cleanly (SIGTERM)")
    print(f"  complete: {snapshot['complete']}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    before, after = compact_journal(CampaignJournal(args.journal), out=args.out)
    target = args.out or args.journal
    print(f"compacted {args.journal}: {before} -> {after} records ({target})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report = report_from_journal(CampaignJournal(args.journal))
    _emit_report(args, report)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "status": _cmd_status,
        "report": _cmd_report,
        "compact": _cmd_compact,
    }
    try:
        return commands[args.command](args)
    except (CampaignSpecError, CampaignJournalError, CampaignQueueError) as exc:
        print(f"error: {exc}")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
