"""CLI: run the project's domain-aware static analysis.

Example::

    python -m repro.tools.check                     # lint src/repro against the baseline
    python -m repro.tools.check --json | jq .new    # machine-readable report
    python -m repro.tools.check --update-baseline   # accept the current findings
    python -m repro.tools.check tests/fixtures/checks/rng_violations.py --no-baseline
    python -m repro.tools.check --explain DET002    # findings + their taint paths
    python -m repro.tools.check --changed-only      # only files git says changed
    python -m repro.tools.check --sarif out.sarif   # SARIF 2.1.0 for CI annotations

Exit status: 0 when no new findings (stale baseline entries still print
as warnings), 1 when new findings or parse errors exist, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.checks import Baseline, Finding, all_rules, find_project_root, run_checks
from repro.checks.sarif import sarif_dumps

_BASELINE_NAME = "checks-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.check",
        description="Domain-aware static analysis: RNG discipline, uint8 "
        "dtype safety, resource lifecycle, public-API typing.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the project's src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <project root>/{_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding is new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--fail-on-stale",
        action="store_true",
        help="treat stale baseline entries as a failure (CI hygiene)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print only this rule's findings, each followed by its "
        "recorded source-to-sink dataflow trace",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="check only files git reports as changed (vs --diff-base); "
        "falls back to the full tree outside a git repo; implies stale "
        "baseline entries are ignored (partial scans cannot judge them)",
    )
    parser.add_argument(
        "--diff-base",
        metavar="REF",
        default="HEAD",
        help="git ref (or ref range like origin/main...) the --changed-only "
        "file set is computed against (default: HEAD)",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        metavar="PATH",
        default=None,
        help="also write new findings as a SARIF 2.1.0 report to PATH",
    )
    return parser


def _git_changed_files(root: Path, base: str) -> list[Path] | None:
    """Python files git reports changed vs *base*, or ``None`` off-repo.

    Covers committed-range changes (``git diff base``), which already
    include unstaged edits, plus untracked files; a failing git (not a
    repo, unknown ref) returns ``None`` so the caller can fall back to a
    full-tree scan rather than silently checking nothing.
    """
    commands = (
        ["git", "-C", str(root), "diff", "--name-only", base, "--"],
        ["git", "-C", str(root), "ls-files", "--others", "--exclude-standard"],
    )
    names: set[str] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=False
            )
        except OSError:
            return None
        if proc.returncode != 0:
            return None
        names.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return [
        root / name
        for name in sorted(names)
        if name.endswith(".py") and (root / name).is_file()
    ]


def _scope_changed(changed: list[Path], scan_roots: list[Path]) -> list[Path]:
    """The subset of *changed* that lies under the requested scan roots.

    Keeps --changed-only from dragging in files a full run would never
    see (deliberately-violating test fixtures, examples/).
    """
    resolved_roots = [p.resolve() for p in scan_roots]
    kept: list[Path] = []
    for path in changed:
        resolved = path.resolve()
        for scan_root in resolved_roots:
            if resolved == scan_root or scan_root in resolved.parents:
                kept.append(path)
                break
    return kept


def _default_paths(root: Path) -> list[Path]:
    src = root / "src" / "repro"
    return [src if src.is_dir() else root]


def _finding_payload(finding: Finding, baselined: bool) -> dict[str, object]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "severity": finding.severity,
        "message": finding.message,
        "baselined": baselined,
        "trace": list(finding.trace),
    }


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.description}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            parser.error(f"no such path: {', '.join(str(p) for p in missing)}")
        root = find_project_root(paths[0].resolve())
    else:
        root = find_project_root(Path.cwd())
        paths = _default_paths(root)

    partial_scan = False
    if args.changed_only:
        changed = _git_changed_files(root, args.diff_base)
        if changed is None:
            print(
                "--changed-only: git unavailable or --diff-base unknown; "
                "falling back to a full scan",
                file=sys.stderr,
            )
        else:
            paths = _scope_changed(changed, paths)
            partial_scan = True
            if not paths:
                print("0 changed file(s) under the scan roots: nothing to check")
                return 0

    report = run_checks(paths, rules, root=root)
    findings = report.all_findings

    baseline_path = args.baseline if args.baseline is not None else root / _BASELINE_NAME
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)

    if args.update_baseline:
        baseline.save(baseline_path, findings)
        if not args.json:
            print(
                f"baseline updated: {len(findings)} finding(s) accepted "
                f"-> {baseline_path}"
            )
        return 0

    diff = baseline.diff(findings)
    failed = bool(diff.new) or (
        args.fail_on_stale and not partial_scan and bool(diff.stale)
    )

    if args.sarif is not None:
        args.sarif.write_text(sarif_dumps(diff.new, rules), encoding="utf-8")

    if args.explain is not None:
        matching = [f for f in findings if f.rule == args.explain]
        for finding in matching:
            print(finding.format())
            if finding.trace:
                for step in finding.trace:
                    print(f"    {step}")
            else:
                print("    (no dataflow trace recorded for this finding)")
        print(f"{len(matching)} finding(s) for {args.explain}")
        return 1 if failed else 0

    if args.json:
        accepted_ids = {id(f) for f in diff.accepted}
        payload = {
            "root": str(report.root),
            "files_checked": report.files_checked,
            "findings": [
                _finding_payload(f, id(f) in accepted_ids) for f in findings
            ],
            "new": [_finding_payload(f, False) for f in diff.new],
            "baselined": len(diff.accepted),
            "stale": diff.stale,
            "exit_code": 1 if failed else 0,
        }
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    for finding in diff.new:
        print(finding.format())
    for finding in diff.accepted:
        print(f"{finding.format()} (baselined)")
    if not partial_scan:
        for fingerprint in diff.stale:
            print(
                f"stale baseline entry (remove it): {fingerprint}", file=sys.stderr
            )
    summary = (
        f"{report.files_checked} file(s) checked: {len(diff.new)} new, "
        f"{len(diff.accepted)} baselined, "
        f"{0 if partial_scan else len(diff.stale)} stale"
    )
    print(summary)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
