"""CLI: run the project's domain-aware static analysis.

Example::

    python -m repro.tools.check                     # lint src/repro against the baseline
    python -m repro.tools.check --json | jq .new    # machine-readable report
    python -m repro.tools.check --update-baseline   # accept the current findings
    python -m repro.tools.check tests/fixtures/checks/rng_violations.py --no-baseline

Exit status: 0 when no new findings (stale baseline entries still print
as warnings), 1 when new findings or parse errors exist, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.checks import Baseline, Finding, all_rules, find_project_root, run_checks

_BASELINE_NAME = "checks-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.check",
        description="Domain-aware static analysis: RNG discipline, uint8 "
        "dtype safety, resource lifecycle, public-API typing.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the project's src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <project root>/{_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding is new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--fail-on-stale",
        action="store_true",
        help="treat stale baseline entries as a failure (CI hygiene)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _default_paths(root: Path) -> list[Path]:
    src = root / "src" / "repro"
    return [src if src.is_dir() else root]


def _finding_payload(finding: Finding, baselined: bool) -> dict[str, object]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "severity": finding.severity,
        "message": finding.message,
        "baselined": baselined,
    }


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.description}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            parser.error(f"no such path: {', '.join(str(p) for p in missing)}")
        root = find_project_root(paths[0].resolve())
    else:
        root = find_project_root(Path.cwd())
        paths = _default_paths(root)

    report = run_checks(paths, rules, root=root)
    findings = report.all_findings

    baseline_path = args.baseline if args.baseline is not None else root / _BASELINE_NAME
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)

    if args.update_baseline:
        baseline.save(baseline_path, findings)
        if not args.json:
            print(
                f"baseline updated: {len(findings)} finding(s) accepted "
                f"-> {baseline_path}"
            )
        return 0

    diff = baseline.diff(findings)
    failed = bool(diff.new) or (args.fail_on_stale and bool(diff.stale))

    if args.json:
        accepted_ids = {id(f) for f in diff.accepted}
        payload = {
            "root": str(report.root),
            "files_checked": report.files_checked,
            "findings": [
                _finding_payload(f, id(f) in accepted_ids) for f in findings
            ],
            "new": [_finding_payload(f, False) for f in diff.new],
            "baselined": len(diff.accepted),
            "stale": diff.stale,
            "exit_code": 1 if failed else 0,
        }
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    for finding in diff.new:
        print(finding.format())
    for finding in diff.accepted:
        print(f"{finding.format()} (baselined)")
    for fingerprint in diff.stale:
        print(f"stale baseline entry (remove it): {fingerprint}", file=sys.stderr)
    summary = (
        f"{report.files_checked} file(s) checked: {len(diff.new)} new, "
        f"{len(diff.accepted)} baselined, {len(diff.stale)} stale"
    )
    print(summary)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
