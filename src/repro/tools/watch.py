"""CLI: watch a running campaign live from its journal + snapshot stream.

Example::

    python -m repro.tools.watch --journal runs/tau.jsonl
    python -m repro.tools.watch --journal runs/tau.jsonl \\
        --snapshots runs/tau-live.jsonl --interval 0.5
    python -m repro.tools.watch --snapshots runs/serve-live.jsonl --once
    python -m repro.tools.watch --snapshots live.jsonl --once \\
        --prometheus-out metrics.prom

The watcher is a read-only tail over two append-only streams the run is
producing anyway: the campaign journal (``repro.campaign/1`` -- queue
transitions, leases, heartbeats) and the live snapshot stream
(``repro.obs.live/1`` JSONL written by ``--snapshot-out``).  It never
writes to either and can attach or detach at any point mid-run; torn
final lines -- the normal signature of a file being appended to this
instant -- are simply picked up on the next poll, and torn mid-file
heartbeat lines are skipped, exactly like the master's own supervision
tail.

Lease health (LIVE / SLOW / STUCK) is classified with the same rule the
supervisor uses, so a SIGSTOPped worker shows up as STUCK here within
one heartbeat-staleness window even before the master reclaims it.
Pass the campaign's ``--heartbeat-s``/``--stuck-after`` values if they
differ from the defaults.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.campaign.supervise import (
    JournalTail,
    LeaseHealth,
    SupervisePolicy,
    classify_lease,
)
from repro.obs.live import LIVE_FORMAT, LiveCollector, render_prometheus

#: Unicode block ramp for sparklines (min .. max of the window).
_BLOCKS = "▁▂▃▄▅▆▇█"

#: Display order for the unit-status counts line.
_STATUSES = ("queued", "leased", "done", "failed", "quarantined")


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """The classic one-line chart: last *width* values, min..max scaled."""
    window = list(values)[-width:]
    if not window:
        return ""
    lo = min(window)
    hi = max(window)
    if hi <= lo:
        return _BLOCKS[0] * len(window)
    span = hi - lo
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - lo) / span * len(_BLOCKS)))]
        for v in window
    )


@dataclass
class UnitView:
    """The watcher's folded view of one campaign unit."""

    key: str
    index: int
    status: str = "queued"
    fence: int = -1
    owner: str = ""
    granted: float = 0.0
    expires: float = 0.0
    last_beat: float = 0.0
    beat_seq: int = -1
    attempts: int = 0
    deaths: int = 0
    reclaims: int = 0
    error: str = ""

    def health(self, now: float, policy: SupervisePolicy) -> LeaseHealth:
        return classify_lease(
            now, self.granted, self.last_beat, policy,
            has_beats=self.beat_seq >= 0,
        )


def _as_str(record: dict[str, object], key: str, default: str = "") -> str:
    value = record.get(key, default)
    return default if value is None else str(value)


def _as_int(record: dict[str, object], key: str, default: int = 0) -> int:
    value = record.get(key, default)
    if isinstance(value, (int, float)):
        return int(value)
    return default


def _as_float(record: dict[str, object], key: str, default: float = 0.0) -> float:
    value = record.get(key, default)
    if isinstance(value, (int, float)):
        return float(value)
    return default


@dataclass
class WatchState:
    """Campaign state folded from a journal tail.

    The fold mirrors :class:`repro.campaign.queue.QueueState` closely
    enough for display purposes, but stays deliberately forgiving: an
    unknown event kind is ignored, a heartbeat for a fenced-off lease is
    dropped, and a journal that starts mid-stream (``compact``\\ ed, or
    tailed from an offset) still renders whatever it can prove.
    """

    header: dict[str, object] | None = None
    units: dict[str, UnitView] = field(default_factory=dict)
    drained: bool = False
    incarnations: int = 0
    records: int = 0

    def _unit(self, record: dict[str, object]) -> UnitView:
        key = _as_str(record, "unit")
        view = self.units.get(key)
        if view is None:
            view = UnitView(key=key, index=_as_int(record, "index", len(self.units)))
            self.units[key] = view
        return view

    @property
    def max_attempts(self) -> int:
        if self.header is None:
            return 3
        return _as_int(self.header, "max_attempts", 3)

    def feed(self, records: Sequence[dict[str, object]]) -> None:
        """Fold a batch of journal records into the view."""
        for record in records:
            self.records += 1
            event = record.get("event")
            if event == "campaign":
                self.header = record
            elif event == "master":
                self.incarnations += 1
            elif event == "queued":
                self._unit(record)
            elif event == "leased":
                view = self._unit(record)
                view.status = "leased"
                view.fence = _as_int(record, "fence")
                view.owner = _as_str(record, "worker")
                view.granted = _as_float(record, "granted")
                view.expires = _as_float(record, "expires")
                view.last_beat = view.granted
                view.beat_seq = -1
            elif event == "heartbeat":
                view = self._unit(record)
                fence = record.get("fence")
                if fence is None or _as_int(record, "fence") == view.fence:
                    view.last_beat = max(view.last_beat, _as_float(record, "t"))
                    view.beat_seq = max(view.beat_seq, _as_int(record, "seq"))
            elif event == "extended":
                self._unit(record).expires = _as_float(record, "expires")
            elif event == "reclaimed":
                view = self._unit(record)
                view.status = "queued"
                view.reclaims += 1
                view.beat_seq = -1
            elif event == "done":
                self._unit(record).status = "done"
            elif event == "failed":
                view = self._unit(record)
                if _as_str(record, "kind") == "died":
                    view.deaths = max(view.deaths, _as_int(record, "death"))
                else:
                    view.attempts = max(view.attempts, _as_int(record, "attempt"))
                view.error = _as_str(record, "error")
                view.status = (
                    "failed" if view.attempts >= self.max_attempts else "queued"
                )
            elif event == "quarantined":
                view = self._unit(record)
                view.status = "quarantined"
                view.error = _as_str(record, "error")
            elif event == "drained":
                self.drained = True

    def counts(self) -> dict[str, int]:
        counts = {status: 0 for status in _STATUSES}
        for view in self.units.values():
            counts[view.status] = counts.get(view.status, 0) + 1
        return counts

    def leased(self) -> list[UnitView]:
        views = [v for v in self.units.values() if v.status == "leased"]
        return sorted(views, key=lambda v: v.index)

    @property
    def complete(self) -> bool:
        """Every expected unit reached a terminal state (or drain)."""
        if self.drained:
            return True
        if self.header is None or not self.units:
            return False
        expected = _as_int(self.header, "units", len(self.units))
        terminal = sum(
            1
            for view in self.units.values()
            if view.status in ("done", "failed", "quarantined")
        )
        return terminal >= expected


def feed_snapshots(
    collector: LiveCollector, records: Sequence[dict[str, object]]
) -> int:
    """Fold ``repro.obs.live/1`` snapshot records into a series store.

    Foreign or torn records are skipped; returns how many were folded.
    The collector here is purely a display-side ring-buffer store -- it
    is never started and never writes.
    """
    folded = 0
    for record in records:
        if record.get("format") != LIVE_FORMAT:
            continue
        values = record.get("values")
        if not isinstance(values, dict):
            continue
        t = _as_float(record, "t", default=0.0)
        for name in sorted(values):
            value = values[name]
            if isinstance(value, (int, float)):
                collector.record(str(name), float(value), t=t or None)
        folded += 1
    return folded


def _format_age(now: float, then: float) -> str:
    return f"{max(0.0, now - then):.1f}s"


def render_frame(
    state: WatchState,
    collector: LiveCollector,
    *,
    now: float,
    policy: SupervisePolicy,
    skipped: int = 0,
) -> str:
    """One full watch frame as text (what ``--once`` prints verbatim)."""
    lines: list[str] = []
    if state.header is not None:
        suffix = "  [drained]" if state.drained else ""
        lines.append(f"campaign: {_as_str(state.header, 'spec')}")
        lines.append(
            f"  scale={_as_str(state.header, 'scale')} "
            f"seed={_as_int(state.header, 'seed')} "
            f"units={_as_int(state.header, 'units')}{suffix}"
        )
        counts = state.counts()
        lines.append("  " + " ".join(f"{s}={counts[s]}" for s in _STATUSES))
        for view in state.leased():
            health = view.health(now, policy).value.upper()
            beat = (
                f"{_format_age(now, view.last_beat)} (seq {view.beat_seq})"
                if view.beat_seq >= 0
                else "never"
            )
            lines.append(
                f"    [{health:>6}] {view.key}  owner={view.owner} "
                f"fence={view.fence} age={_format_age(now, view.granted)} "
                f"heartbeat={beat}"
            )
        for view in sorted(state.units.values(), key=lambda v: v.index):
            if view.status == "quarantined":
                lines.append(f"    [poison] {view.key}  {view.error}")
    elif state.records:
        lines.append(f"journal: {state.records} records, no campaign header yet")
    names = collector.names()
    if names:
        lines.append("series:")
        for name in names:
            series = collector.series(name)
            latest = series.latest()
            shown = f"{latest:g}" if latest is not None else "-"
            lines.append(
                f"  {name:<28} {shown:>12}  {sparkline(series.values())}"
            )
    if not lines:
        lines.append("waiting for journal/snapshot data...")
    if skipped:
        lines.append(f"  note: {skipped} torn/foreign lines skipped")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.watch",
        description="Live (or one-shot) view over a campaign journal and "
        "repro.obs.live/1 snapshot stream.",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="campaign journal to tail (unit states, leases, heartbeats)",
    )
    parser.add_argument(
        "--snapshots",
        metavar="PATH",
        default=None,
        help="repro.obs.live/1 JSONL stream to tail (from --snapshot-out)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (scripting / CI mode)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh cadence in live mode (default: 1.0)",
    )
    parser.add_argument(
        "--heartbeat-s",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="the campaign's worker heartbeat interval",
    )
    parser.add_argument(
        "--stuck-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat staleness shown as STUCK "
        "(default: 4 x heartbeat interval)",
    )
    parser.add_argument(
        "--prometheus-out",
        metavar="PATH",
        default=None,
        help="on exit, write the tailed series in Prometheus text "
        "exposition format",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.journal is None and args.snapshots is None:
        parser.error("at least one of --journal / --snapshots is required")
    if args.interval <= 0.0:
        parser.error(f"--interval must be > 0, got {args.interval:g}")
    try:
        policy = SupervisePolicy.resolve(
            heartbeat_s=args.heartbeat_s, stuck_after_s=args.stuck_after
        )
    except ValueError as exc:
        parser.error(str(exc))

    journal_tail = JournalTail(args.journal) if args.journal else None
    snapshot_tail = JournalTail(args.snapshots) if args.snapshots else None
    state = WatchState()
    collector = LiveCollector()
    try:
        while True:
            if journal_tail is not None:
                state.feed(journal_tail.poll())
            if snapshot_tail is not None:
                feed_snapshots(collector, snapshot_tail.poll())
            skipped = (journal_tail.skipped if journal_tail else 0) + (
                snapshot_tail.skipped if snapshot_tail else 0
            )
            frame = render_frame(
                state, collector, now=time.time(), policy=policy, skipped=skipped
            )
            if args.once:
                print(frame)
                break
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            if state.complete:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if args.prometheus_out is not None:
        with open(args.prometheus_out, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(collector))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
