"""CLI: sweep one InFrame parameter and print its Figure-7 consequences.

A single-axis front-end over :mod:`repro.campaign`: the parameter/values
pair becomes a one-axis campaign spec, each value one seed-stamped work
unit executed by the same master/worker machinery as
``python -m repro.tools.campaign`` (in-memory, no journal).

Example::

    python -m repro.tools.sweep --parameter tau --values 8 10 12 14 16
    python -m repro.tools.sweep --parameter distance --values 1.0 1.5 2.0
    python -m repro.tools.sweep --parameter tau --values 8 10 12 14 --workers 4
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.campaign import (
    SWEEPABLE,
    CampaignMaster,
    CampaignSpecError,
    coerce_sweep_values,
    encode_faults_value,
)
from repro.obs import RunTelemetry
from repro.tools.simulate import add_fault_arguments, add_telemetry_argument, write_telemetry

__all__ = ["SWEEPABLE", "build_parser", "build_spec", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.sweep",
        description="Sweep one InFrame parameter over the simulated link.",
    )
    parser.add_argument(
        "--parameter", choices=sorted(SWEEPABLE), required=True,
        help="config/camera field to sweep (seeds = replicate count)",
    )
    parser.add_argument(
        "--values", nargs="+", required=True, help="values to try (type-checked per field)"
    )
    parser.add_argument(
        "--video", choices=("gray", "dark-gray", "video"), default="gray"
    )
    parser.add_argument(
        "--scale", choices=("quick", "benchmark", "full"), default="benchmark"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run sweep cells on this many worker processes (default: serial)",
    )
    add_telemetry_argument(parser)
    add_fault_arguments(parser)
    return parser


def build_spec(
    parameter: str,
    values: list[str],
    *,
    video: str = "gray",
    faults: str | None = None,
    no_heal: bool = False,
) -> str:
    """The campaign spec one sweep invocation expands to.

    Raises :class:`~repro.campaign.CampaignSpecError` (listing the
    sweepable keys) when the values do not fit the parameter -- the
    parse-time validation the campaign grammar itself applies.
    """
    coerced = coerce_sweep_values(parameter, values)
    csv = ",".join(str(v) if isinstance(v, int) else f"{v:g}" for v in coerced)
    axes = [f"parameter={parameter}:{csv}", f"video={video}"]
    if faults:
        axes.append(f"faults={encode_faults_value(faults)}")
    if no_heal:
        axes.append("heal=off")
    return "|".join(axes)


def _format_row(
    parameter: str, row: dict[str, object]
) -> list[object]:
    """One report row rendered as the sweep table's cells."""
    params = row["params"]
    assert isinstance(params, dict)
    # `seeds=1` is the default replicate count and is elided from params.
    value = SWEEPABLE[parameter](params.get(parameter, 1))
    if row["status"] != "ok":
        return [value, f"invalid: {row.get('error')}", "", ""]
    stats = row["stats"]
    assert isinstance(stats, dict)
    return [
        value,
        f"{float(stats['available']) * 100:.1f}%",
        f"{float(stats['error_rate']) * 100:.1f}%",
        f"{float(stats['throughput_kbps']):.2f}",
    ]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        spec = build_spec(
            args.parameter,
            args.values,
            video=args.video,
            faults=args.faults,
            no_heal=args.no_heal,
        )
    except CampaignSpecError as exc:
        print(f"error: {exc}")
        return 2

    master = CampaignMaster(
        spec,
        scale=args.scale,
        seed=args.seed,
        fault_seed=args.fault_seed,
        workers=args.workers,
    )
    outcome = master.run()
    rows = [_format_row(args.parameter, dict(row)) for row in outcome.report.rows]
    if args.telemetry_out is not None:
        merged = RunTelemetry.merge(
            [
                RunTelemetry.from_dict(result.telemetry)
                for _, result in sorted(
                    outcome.results.items(), key=lambda kv: kv[1].index
                )
                if result.telemetry is not None
            ]
        )
        write_telemetry(args.telemetry_out, merged)
    print(
        format_table(
            [args.parameter, "avail", "err", "throughput kbps"],
            rows,
            title=f"Sweep of {args.parameter} on {args.video} content ({args.scale} scale)",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
