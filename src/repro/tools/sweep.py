"""CLI: sweep one InFrame parameter and print its Figure-7 consequences.

Example::

    python -m repro.tools.sweep --parameter tau --values 8 10 12 14 16
    python -m repro.tools.sweep --parameter amplitude --values 10 20 30 40 --video video
    python -m repro.tools.sweep --parameter tau --values 8 10 12 14 --workers 4
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.experiments import ExperimentScale
from repro.analysis.reporting import format_table
from repro.core.pipeline import run_link
from repro.faults import FaultPlan
from repro.obs import RunTelemetry
from repro.runtime.engine import ExecutionEngine
from repro.tools.simulate import (
    add_fault_arguments,
    add_telemetry_argument,
    parse_fault_plan,
    write_telemetry,
)

SWEEPABLE = {
    "tau": int,
    "amplitude": float,
    "pixels_per_block": int,
    "decision_margin": float,
}


@dataclass(frozen=True)
class _SweepContext:
    """Everything one sweep cell needs besides its value."""

    scale: ExperimentScale
    parameter: str
    video_name: str
    seed: int
    faults: FaultPlan | None = None
    heal: bool | None = None
    collect_telemetry: bool = False


def _sweep_cell(value, ctx: _SweepContext) -> tuple[list, dict | None]:
    """One table row (plus the cell's serialized telemetry, when collected);
    module-level so the engine can dispatch it to workers."""
    try:
        config = ctx.scale.config().with_updates(**{ctx.parameter: value})
    except ValueError as exc:
        return [value, f"invalid: {exc}", "", ""], None
    run = run_link(
        config,
        ctx.scale.video(ctx.video_name),
        camera=ctx.scale.camera(),
        seed=ctx.seed,
        faults=ctx.faults,
        heal=ctx.heal,
        collect_telemetry=ctx.collect_telemetry,
    )
    stats = run.stats
    row = [
        value,
        f"{stats.available_gob_ratio * 100:.1f}%",
        f"{stats.gob_error_rate * 100:.1f}%",
        f"{stats.throughput_kbps:.2f}",
    ]
    telemetry = run.telemetry.as_dict() if run.telemetry is not None else None
    return row, telemetry


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.sweep",
        description="Sweep one InFrame parameter over the simulated link.",
    )
    parser.add_argument(
        "--parameter", choices=sorted(SWEEPABLE), required=True, help="config field to sweep"
    )
    parser.add_argument(
        "--values", nargs="+", required=True, help="values to try (type-checked per field)"
    )
    parser.add_argument(
        "--video", choices=("gray", "dark-gray", "video"), default="gray"
    )
    parser.add_argument(
        "--scale", choices=("quick", "benchmark", "full"), default="benchmark"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run sweep cells on this many worker processes (default: serial)",
    )
    add_telemetry_argument(parser)
    add_fault_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    faults, heal = parse_fault_plan(parser, args)
    caster = SWEEPABLE[args.parameter]
    try:
        values = [caster(v) for v in args.values]
    except ValueError:
        print(f"error: --values must be {caster.__name__}s for {args.parameter}")
        return 2

    scale = getattr(ExperimentScale, args.scale)()
    context = _SweepContext(
        scale=scale,
        parameter=args.parameter,
        video_name=args.video,
        seed=args.seed,
        faults=faults,
        heal=heal,
        collect_telemetry=args.telemetry_out is not None,
    )
    if args.workers is not None and args.workers > 1:
        # Each cell is one independent run_link; the engine spreads cells
        # over processes and falls back to serial if the pool dies.
        engine = ExecutionEngine(workers=args.workers)
        cells = engine.map(_sweep_cell, values, context=context)
    else:
        cells = [_sweep_cell(value, context) for value in values]
    rows = [row for row, _ in cells]
    if args.telemetry_out is not None:
        merged = RunTelemetry.merge(
            [
                RunTelemetry.from_dict(payload)
                for _, payload in cells
                if payload is not None
            ]
        )
        write_telemetry(args.telemetry_out, merged)
    print(
        format_table(
            [args.parameter, "avail", "err", "throughput kbps"],
            rows,
            title=f"Sweep of {args.parameter} on {args.video} content ({args.scale} scale)",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
