"""CLI: sweep one InFrame parameter and print its Figure-7 consequences.

Example::

    python -m repro.tools.sweep --parameter tau --values 8 10 12 14 16
    python -m repro.tools.sweep --parameter amplitude --values 10 20 30 40 --video video
"""

from __future__ import annotations

import argparse

from repro.analysis.experiments import ExperimentScale
from repro.analysis.reporting import format_table
from repro.core.pipeline import run_link

SWEEPABLE = {
    "tau": int,
    "amplitude": float,
    "pixels_per_block": int,
    "decision_margin": float,
}


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.sweep",
        description="Sweep one InFrame parameter over the simulated link.",
    )
    parser.add_argument(
        "--parameter", choices=sorted(SWEEPABLE), required=True, help="config field to sweep"
    )
    parser.add_argument(
        "--values", nargs="+", required=True, help="values to try (type-checked per field)"
    )
    parser.add_argument(
        "--video", choices=("gray", "dark-gray", "video"), default="gray"
    )
    parser.add_argument(
        "--scale", choices=("quick", "benchmark", "full"), default="benchmark"
    )
    parser.add_argument("--seed", type=int, default=1)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    caster = SWEEPABLE[args.parameter]
    try:
        values = [caster(v) for v in args.values]
    except ValueError:
        print(f"error: --values must be {caster.__name__}s for {args.parameter}")
        return 2

    scale = getattr(ExperimentScale, args.scale)()
    camera = scale.camera()
    video = scale.video(args.video)
    rows = []
    for value in values:
        try:
            config = scale.config().with_updates(**{args.parameter: value})
        except ValueError as exc:
            rows.append([value, f"invalid: {exc}", "", ""])
            continue
        stats = run_link(config, video, camera=camera, seed=args.seed).stats
        rows.append(
            [
                value,
                f"{stats.available_gob_ratio * 100:.1f}%",
                f"{stats.gob_error_rate * 100:.1f}%",
                f"{stats.throughput_kbps:.2f}",
            ]
        )
    print(
        format_table(
            [args.parameter, "avail", "err", "throughput kbps"],
            rows,
            title=f"Sweep of {args.parameter} on {args.video} content ({args.scale} scale)",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
